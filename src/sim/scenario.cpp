#include "sim/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "sim/sources.hpp"
#include "sim/topology.hpp"
#include "util/stats.hpp"

namespace hfsc {

namespace {

// Parse errors carry the file name (when known) ahead of the line number,
// "file.scn:12: ..." editor-style, so a failing batch run says which of
// its inputs is broken.
[[noreturn]] void fail_at(const std::string& name, std::size_t line,
                          const std::string& what) {
  if (name.empty()) {
    throw std::runtime_error("scenario line " + std::to_string(line) + ": " +
                             what);
  }
  throw std::runtime_error(name + ":" + std::to_string(line) + ": " + what);
}

// Splits "<number><suffix>" where number may be decimal.
bool split_unit(const std::string& tok, double* value, std::string* unit) {
  std::size_t i = 0;
  while (i < tok.size() &&
         (std::isdigit(static_cast<unsigned char>(tok[i])) || tok[i] == '.')) {
    ++i;
  }
  if (i == 0) return false;
  try {
    *value = std::stod(tok.substr(0, i));
  } catch (...) {
    return false;
  }
  *unit = tok.substr(i);
  return true;
}

}  // namespace

RateBps parse_rate(const std::string& tok) {
  double v;
  std::string unit;
  if (!split_unit(tok, &v, &unit)) {
    throw std::runtime_error("bad rate: " + tok);
  }
  double bits;
  if (unit == "bps") {
    bits = v;
  } else if (unit == "kbps") {
    bits = v * 1e3;
  } else if (unit == "Mbps" || unit == "mbps") {
    bits = v * 1e6;
  } else if (unit == "Gbps" || unit == "gbps") {
    bits = v * 1e9;
  } else {
    throw std::runtime_error("bad rate unit: " + tok);
  }
  return static_cast<RateBps>(bits / 8.0);
}

TimeNs parse_time(const std::string& tok) {
  double v;
  std::string unit;
  if (!split_unit(tok, &v, &unit)) {
    throw std::runtime_error("bad time: " + tok);
  }
  double ns;
  if (unit == "ns") {
    ns = v;
  } else if (unit == "us") {
    ns = v * 1e3;
  } else if (unit == "ms") {
    ns = v * 1e6;
  } else if (unit == "s") {
    ns = v * 1e9;
  } else {
    throw std::runtime_error("bad time unit: " + tok);
  }
  return static_cast<TimeNs>(ns);
}

Bytes parse_bytes(const std::string& tok) {
  // std::stoull silently accepts a leading '-' (wrapping); reject any
  // non-digit up front.
  if (tok.empty() ||
      !std::all_of(tok.begin(), tok.end(), [](unsigned char c) {
        return std::isdigit(c);
      })) {
    throw std::runtime_error("bad byte count: " + tok);
  }
  try {
    return static_cast<Bytes>(std::stoull(tok));
  } catch (...) {
    throw std::runtime_error("bad byte count: " + tok);
  }
}

namespace {

ServiceCurve parse_spec(std::istringstream& ls, const std::string& fname,
                        std::size_t line) {
  // An explicitly written spec that evaluates to the zero curve is a
  // config mistake (the class would silently never receive that kind of
  // service), so it is rejected rather than parsed.
  auto nonzero = [&fname, line](const ServiceCurve& sc) {
    if (sc.is_zero()) fail_at(fname, line, "zero-rate service curve");
    return sc;
  };
  std::string kind;
  if (!(ls >> kind)) fail_at(fname, line, "missing curve spec");
  if (kind == "linear") {
    std::string r;
    if (!(ls >> r)) fail_at(fname, line, "linear needs a rate");
    return nonzero(ServiceCurve::linear(parse_rate(r)));
  }
  if (kind == "curve") {
    std::string m1, d, m2;
    if (!(ls >> m1 >> d >> m2)) fail_at(fname, line, "curve needs <m1> <d> <m2>");
    const ServiceCurve sc{parse_rate(m1), parse_time(d), parse_rate(m2)};
    if (!sc.is_supported()) {
      fail_at(fname, line, "unsupported curve shape (must be concave, or convex with "
                 "m1 = 0)");
    }
    return nonzero(sc);
  }
  if (kind == "udr") {
    std::string u, d, r;
    if (!(ls >> u >> d >> r)) fail_at(fname, line, "udr needs <u> <d> <r>");
    return nonzero(from_udr(parse_bytes(u), parse_time(d), parse_rate(r)));
  }
  fail_at(fname, line, "unknown curve spec kind: " + kind);
}

// Body of a `class` directive after <name> <parent>: rt/ls/ul/qlimit
// [/shard] attributes.  Shared between static classes and timed
// (`at ... class`) creations, which cannot carry a shard pin.
void parse_class_attrs(std::istringstream& ls, ScenarioClass* c,
                       bool allow_shard, const std::string& fname,
                       std::size_t line) {
  std::string key;
  while (ls >> key) {
    if (key == "rt") {
      c->cfg.rt = parse_spec(ls, fname, line);
    } else if (key == "ls") {
      c->cfg.ls = parse_spec(ls, fname, line);
    } else if (key == "ul") {
      c->cfg.ul = parse_spec(ls, fname, line);
    } else if (key == "qlimit") {
      std::string n;
      if (!(ls >> n)) fail_at(fname, line, "qlimit needs a count");
      c->qlimit = static_cast<std::size_t>(parse_bytes(n));
    } else if (key == "shard") {
      std::string n;
      if (!(ls >> n)) fail_at(fname, line, "shard needs an index");
      if (!allow_shard) {
        fail_at(fname, line, "shard pins are not allowed on timed classes");
      }
      if (c->parent != "root") {
        fail_at(fname, line,
                "shard pins are only allowed on top-level classes");
      }
      c->shard = static_cast<int>(parse_bytes(n));
    } else {
      fail_at(fname, line, "unknown class attribute: " + key);
    }
  }
  if (c->cfg.rt.is_zero() && c->cfg.ls.is_zero()) {
    fail_at(fname, line, "class " + c->name + " needs at least one of rt/ls");
  }
}

// Parses one source directive body after `source <kind> <class>`.  The
// timed form (`at <t> source ...`) omits <start>/<stop>: the event time
// is the start and the stop is resolved from later stop/delete events.
ScenarioSource parse_source(std::istringstream& ls, const std::string& kind,
                            bool timed, const std::string& fname,
                            std::size_t line) {
  ScenarioSource s;
  auto want = [&](const char* what) -> std::string {
    std::string tok;
    if (!(ls >> tok)) fail_at(fname, line, std::string("source missing ") + what);
    return tok;
  };
  auto span = [&] {
    if (timed) return;
    s.start = parse_time(want("start"));
    s.stop = parse_time(want("stop"));
  };
  if (kind == "cbr") {
    s.kind = ScenarioSource::Kind::kCbr;
    s.rate = parse_rate(want("rate"));
    s.pkt_len = parse_bytes(want("pkt"));
    span();
  } else if (kind == "poisson") {
    s.kind = ScenarioSource::Kind::kPoisson;
    s.rate = parse_rate(want("rate"));
    s.pkt_len = parse_bytes(want("pkt"));
    span();
    s.seed = parse_bytes(want("seed"));
  } else if (kind == "onoff") {
    s.kind = ScenarioSource::Kind::kOnOff;
    s.rate = parse_rate(want("peak rate"));
    s.pkt_len = parse_bytes(want("pkt"));
    s.mean_on = parse_time(want("mean_on"));
    s.mean_off = parse_time(want("mean_off"));
    span();
    s.seed = parse_bytes(want("seed"));
  } else if (kind == "pareto") {
    s.kind = ScenarioSource::Kind::kPareto;
    s.rate = parse_rate(want("peak rate"));
    s.pkt_len = parse_bytes(want("pkt"));
    s.mean_on = parse_time(want("mean_on"));
    s.mean_off = parse_time(want("mean_off"));
    s.alpha = std::stod(want("alpha"));
    if (!(s.alpha > 1.0)) {
      fail_at(fname, line, "pareto alpha must be > 1 (finite mean)");
    }
    span();
    s.seed = parse_bytes(want("seed"));
  } else if (kind == "greedy") {
    s.kind = ScenarioSource::Kind::kGreedy;
    s.pkt_len = parse_bytes(want("pkt"));
    s.window = static_cast<std::size_t>(parse_bytes(want("window")));
    span();
  } else if (kind == "tcpish") {
    s.kind = ScenarioSource::Kind::kTcpish;
    s.pkt_len = parse_bytes(want("pkt"));
    s.window = static_cast<std::size_t>(parse_bytes(want("max window")));
    if (s.window == 0) fail_at(fname, line, "tcpish max window must be > 0");
    span();
  } else if (kind == "video") {
    s.kind = ScenarioSource::Kind::kVideo;
    s.fps = std::stod(want("fps"));
    s.mean_frame = parse_bytes(want("mean_frame"));
    s.max_frame = parse_bytes(want("max_frame"));
    s.mtu = parse_bytes(want("mtu"));
    span();
    s.seed = parse_bytes(want("seed"));
  } else {
    fail_at(fname, line, "unknown source kind: " + kind);
  }
  std::string extra;
  if (ls >> extra) fail_at(fname, line, "trailing token: " + extra);
  s.line = line;
  return s;
}

}  // namespace

Scenario Scenario::parse(std::istream& in, const std::string& name) {
  Scenario sc;
  sc.file = name;
  // Parser scope: "" at top level, else the open `node` block.  Legacy
  // single-node files keep everything at top level; the implicit node
  // "link" is materialized after the loop.
  std::string cur_node;
  bool saw_link = false;
  // Per-scope class names ever declared (static and timed) — parent /
  // target validation for later directives.
  std::map<std::string, std::set<std::string>> ever;

  auto find_static = [&sc](const std::string& node,
                           const std::string& nm) -> ScenarioClass* {
    for (ScenarioClass& c : sc.classes) {
      if (c.node == node && c.name == nm) return &c;
    }
    return nullptr;
  };

  std::string raw;
  std::size_t line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string directive;
    if (!(ls >> directive)) continue;

    auto global_only = [&] {
      if (!cur_node.empty()) {
        fail_at(name, line,
                directive + " is a global directive (not allowed inside a "
                            "node block)");
      }
    };
    auto no_trailing = [&] {
      std::string extra;
      if (ls >> extra) fail_at(name, line, "trailing token: " + extra);
    };

    if (directive == "link") {
      global_only();
      if (sc.multi_node) {
        fail_at(name, line, "cannot mix `link` with `node` blocks");
      }
      std::string r;
      if (!(ls >> r)) fail_at(name, line, "link needs a rate");
      sc.link_rate = parse_rate(r);
      saw_link = true;
    } else if (directive == "node") {
      if (!cur_node.empty()) fail_at(name, line, "nested node block");
      if (saw_link) {
        fail_at(name, line, "cannot mix `node` blocks with `link`");
      }
      ScenarioNode n;
      std::string r;
      if (!(ls >> n.name >> r)) fail_at(name, line, "node needs <name> <rate>");
      no_trailing();
      if (sc.find_node(n.name) != nullptr) {
        fail_at(name, line, "duplicate node " + n.name);
      }
      n.rate = parse_rate(r);
      n.line = line;
      cur_node = n.name;
      sc.nodes.push_back(std::move(n));
      sc.multi_node = true;
    } else if (directive == "end") {
      if (cur_node.empty()) fail_at(name, line, "end outside a node block");
      no_trailing();
      cur_node.clear();
    } else if (directive == "duration") {
      global_only();
      std::string t;
      if (!(ls >> t)) fail_at(name, line, "duration needs a time");
      sc.duration = parse_time(t);
    } else if (directive == "window") {
      global_only();
      std::string t;
      if (!(ls >> t)) fail_at(name, line, "window needs a time");
      sc.window = parse_time(t);
    } else if (directive == "scheduler") {
      global_only();
      std::string kind;
      if (!(ls >> kind)) fail_at(name, line, "scheduler needs a kind");
      const auto parsed = parse_scheduler_kind(kind);
      if (!parsed) fail_at(name, line, "unknown scheduler kind: " + kind);
      sc.scheduler = *parsed;
    } else if (directive == "admission") {
      global_only();
      no_trailing();
      sc.admission = true;
    } else if (directive == "class") {
      if (sc.multi_node && cur_node.empty()) {
        fail_at(name, line, "class declared outside a node block");
      }
      ScenarioClass c;
      if (!(ls >> c.name >> c.parent)) {
        fail_at(name, line, "class needs <name> <parent>");
      }
      c.node = cur_node;
      if (ever[cur_node].count(c.name)) {
        fail_at(name, line, "duplicate class " + c.name);
      }
      if (c.parent != "root" && find_static(cur_node, c.parent) == nullptr) {
        fail_at(name, line, "unknown parent class " + c.parent);
      }
      parse_class_attrs(ls, &c, /*allow_shard=*/true, name, line);
      c.line = line;
      ever[cur_node].insert(c.name);
      sc.classes.push_back(std::move(c));
    } else if (directive == "envelope") {
      std::string cls, burst, rate;
      if (!(ls >> cls >> burst >> rate)) {
        fail_at(name, line, "envelope needs <class> <burst> <rate>");
      }
      no_trailing();
      ScenarioClass* c = find_static(cur_node, cls);
      if (c == nullptr) fail_at(name, line, "unknown class " + cls);
      if (c->env_line != 0) {
        fail_at(name, line, "duplicate envelope for class " + cls);
      }
      c->env_burst = parse_bytes(burst);
      c->env_rate = parse_rate(rate);
      if (c->env_burst == 0 && c->env_rate == 0) {
        fail_at(name, line, "envelope must have a non-zero burst or rate");
      }
      c->env_line = line;
    } else if (directive == "deadline") {
      // Per-flow end-to-end budget: the class name identifies the flow
      // (across all hops for routed classes), so the directive is not
      // node-scoped.  Existence is validated after the whole file is
      // read — the class may be declared in a later node block.
      std::string cls, t;
      if (!(ls >> cls >> t)) {
        fail_at(name, line, "deadline needs <class> <time>");
      }
      no_trailing();
      ScenarioDeadline d;
      d.cls = cls;
      d.budget = parse_time(t);
      if (d.budget == 0) fail_at(name, line, "deadline must be positive");
      d.line = line;
      sc.deadlines.push_back(std::move(d));
    } else if (directive == "source") {
      std::string kind, cls;
      if (!(ls >> kind >> cls)) {
        fail_at(name, line, "source needs <kind> <class>");
      }
      // Inside a node block the class must live on that node; a top-level
      // source may name a class on any node (the entry node is resolved
      // from the route after the whole file is read).
      bool known = false;
      for (const ScenarioClass& c : sc.classes) {
        if (c.name == cls && (cur_node.empty() || c.node == cur_node)) {
          known = true;
          break;
        }
      }
      if (!known) fail_at(name, line, "unknown class " + cls);
      ScenarioSource s = parse_source(ls, kind, /*timed=*/false, name, line);
      s.cls = cls;
      s.node = cur_node;  // hint; entry node resolved after parsing
      sc.sources.push_back(std::move(s));
    } else if (directive == "route") {
      global_only();
      ScenarioRoute r;
      if (!(ls >> r.cls)) fail_at(name, line, "route needs <class> <node>...");
      std::string n;
      while (ls >> n) r.nodes.push_back(std::move(n));
      r.line = line;
      sc.routes.push_back(std::move(r));
    } else if (directive == "at") {
      if (sc.multi_node && cur_node.empty()) {
        fail_at(name, line, "`at` event outside a node block");
      }
      std::string t, what;
      if (!(ls >> t >> what)) {
        fail_at(name, line, "at needs <time> <class|delete|source|stop>");
      }
      ScenarioEvent e;
      e.at = parse_time(t);
      e.node = cur_node;
      e.line = line;
      if (what == "class") {
        e.kind = ScenarioEvent::Kind::kAddClass;
        if (!(ls >> e.cls.name >> e.cls.parent)) {
          fail_at(name, line, "at ... class needs <name> <parent>");
        }
        if (find_static(cur_node, e.cls.name) != nullptr) {
          fail_at(name, line,
                  "timed class " + e.cls.name + " duplicates a static class");
        }
        if (e.cls.parent != "root" && !ever[cur_node].count(e.cls.parent)) {
          fail_at(name, line, "unknown parent class " + e.cls.parent);
        }
        e.cls.node = cur_node;
        parse_class_attrs(ls, &e.cls, /*allow_shard=*/false, name, line);
        e.cls.line = line;
        ever[cur_node].insert(e.cls.name);
      } else if (what == "delete") {
        e.kind = ScenarioEvent::Kind::kDeleteClass;
        if (!(ls >> e.target)) fail_at(name, line, "at ... delete needs <class>");
        no_trailing();
        if (!ever[cur_node].count(e.target)) {
          fail_at(name, line, "unknown class " + e.target);
        }
      } else if (what == "source") {
        e.kind = ScenarioEvent::Kind::kStartSource;
        std::string kind, cls;
        if (!(ls >> kind >> cls)) {
          fail_at(name, line, "at ... source needs <kind> <class>");
        }
        if (!ever[cur_node].count(cls)) {
          fail_at(name, line, "unknown class " + cls);
        }
        e.src = parse_source(ls, kind, /*timed=*/true, name, line);
        e.src.cls = cls;
        e.src.node = cur_node;
        e.src.start = e.at;
        e.src.stop = kTimeInfinity;  // truncated by later stop/delete
      } else if (what == "stop") {
        e.kind = ScenarioEvent::Kind::kStopSources;
        if (!(ls >> e.target)) fail_at(name, line, "at ... stop needs <class>");
        no_trailing();
        if (!ever[cur_node].count(e.target)) {
          fail_at(name, line, "unknown class " + e.target);
        }
      } else {
        fail_at(name, line, "unknown at-directive: " + what);
      }
      sc.events.push_back(std::move(e));
    } else {
      fail_at(name, line, "unknown directive: " + directive);
    }
  }

  // ---- finalize -----------------------------------------------------------
  const std::string fname = name.empty() ? "scenario" : name;
  if (sc.multi_node) {
    if (!cur_node.empty()) {
      fail_at(fname, line, "unterminated node block (missing end)");
    }
    for (const ScenarioClass& c : sc.classes) {
      if (c.node.empty()) {
        fail_at(name, c.line, "class declared outside a node block");
      }
    }
    for (const ScenarioEvent& e : sc.events) {
      if (e.node.empty()) {
        fail_at(name, e.line, "`at` event outside a node block");
      }
    }
    sc.link_rate = sc.nodes.front().rate;
  } else {
    if (sc.link_rate == 0) fail_at(fname, line, "missing link");
    if (!sc.routes.empty()) {
      fail_at(name, sc.routes.front().line,
              "route needs `node` blocks (single-link scenario)");
    }
    ScenarioNode n;
    n.name = "link";
    n.rate = sc.link_rate;
    sc.nodes.push_back(std::move(n));
    for (ScenarioClass& c : sc.classes) c.node = "link";
    for (ScenarioSource& s : sc.sources) s.node = "link";
    for (ScenarioEvent& e : sc.events) {
      e.node = "link";
      if (e.kind == ScenarioEvent::Kind::kAddClass) e.cls.node = "link";
      if (e.kind == ScenarioEvent::Kind::kStartSource) e.src.node = "link";
    }
  }
  if (sc.duration == 0) fail_at(fname, line, "missing duration");
  if (sc.classes.empty()) fail_at(fname, line, "no classes");

  // Route validation: every hop must name a known node carrying a static
  // declaration of the class, no node repeats, one route per class, and
  // no (node, class) pair covered twice.
  std::set<std::pair<std::string, std::string>> routed;
  for (const ScenarioRoute& r : sc.routes) {
    if (r.nodes.size() < 2) {
      fail_at(name, r.line, "route needs at least two nodes");
    }
    if (sc.find_route(r.cls) != &r) {
      fail_at(name, r.line, "duplicate route for class " + r.cls);
    }
    std::set<std::string> seen;
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      const std::string& nn = r.nodes[i];
      if (!seen.insert(nn).second) {
        fail_at(name, r.line, "route visits node " + nn + " twice");
      }
      if (sc.find_node(nn) == nullptr) {
        fail_at(name, r.line, "route through unknown node " + nn);
      }
      if (find_static(nn, r.cls) == nullptr) {
        fail_at(name, r.line,
                i == 0 ? "class " + r.cls + " is not declared on its first "
                         "hop " + nn
                       : "class " + r.cls + " is not declared on hop " + nn);
      }
      if (!routed.insert({nn, r.cls}).second) {
        fail_at(name, r.line,
                "class " + r.cls + " already routed at node " + nn);
      }
    }
  }

  // Deadline validation: the class must exist somewhere, one budget per
  // class.
  {
    std::set<std::string> budgeted;
    for (const ScenarioDeadline& d : sc.deadlines) {
      bool known = false;
      for (const ScenarioClass& c : sc.classes) {
        if (c.name == d.cls) {
          known = true;
          break;
        }
      }
      if (!known) fail_at(name, d.line, "unknown class " + d.cls);
      if (!budgeted.insert(d.cls).second) {
        fail_at(name, d.line, "duplicate deadline for class " + d.cls);
      }
    }
  }

  // Entry-node resolution: a source feeds its class's route at the first
  // hop; an unrouted class must pin the source to a node (its block, or
  // being declared on exactly one node).
  auto resolve_entry = [&](ScenarioSource& s) {
    if (const ScenarioRoute* r = sc.find_route(s.cls)) {
      if (!s.node.empty() && s.node != r->nodes.front()) {
        fail_at(name, s.line,
                "source for routed class " + s.cls + " must enter at its "
                "first hop " + r->nodes.front());
      }
      s.node = r->nodes.front();
      return;
    }
    if (!s.node.empty()) return;
    std::string owner;
    for (const ScenarioClass& c : sc.classes) {
      if (c.name != s.cls) continue;
      if (!owner.empty()) {
        fail_at(name, s.line,
                "class " + s.cls + " is declared on several nodes; add a "
                "route or move the source into a node block");
      }
      owner = c.node;
    }
    s.node = owner;  // non-empty: parse checked the class exists somewhere
  };
  for (ScenarioSource& s : sc.sources) resolve_entry(s);
  for (ScenarioEvent& e : sc.events) {
    if (e.kind == ScenarioEvent::Kind::kStartSource) resolve_entry(e.src);
  }
  return sc;
}

Scenario Scenario::parse_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open scenario: " + path);
  return parse(f, path);
}

const ScenarioNode* Scenario::find_node(const std::string& name) const {
  for (const ScenarioNode& n : nodes) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

const ScenarioRoute* Scenario::find_route(const std::string& cls) const {
  for (const ScenarioRoute& r : routes) {
    if (r.cls == cls) return &r;
  }
  return nullptr;
}

namespace {

HierarchySpec spec_from(const std::vector<ScenarioClass>& classes,
                        const std::string& node) {
  HierarchySpec spec;
  for (const ScenarioClass& c : classes) {
    if (!node.empty() && c.node != node) continue;
    HierarchySpec::ClassSpec cs;
    cs.name = c.name;
    cs.parent = c.parent;
    cs.rt = c.cfg.rt;
    cs.ls = c.cfg.ls;
    cs.ul = c.cfg.ul;
    cs.qlimit = c.qlimit;
    cs.env_burst = c.env_burst;
    cs.env_rate = c.env_rate;
    cs.shard = c.shard;
    spec.add(std::move(cs));
  }
  return spec;
}

}  // namespace

HierarchySpec Scenario::to_hierarchy_spec() const {
  return spec_from(classes, "");
}

HierarchySpec Scenario::node_hierarchy_spec(const std::string& node) const {
  return spec_from(classes, node);
}

// ---------------------------------------------------------------------------
// Delay histograms

const std::vector<double>& delay_hist_edges_ms() {
  static const std::vector<double> edges = [] {
    std::vector<double> e;
    double v = 0.001;  // 1 us
    for (int k = 0; k <= 24; ++k, v *= 2.0) e.push_back(v);
    return e;
  }();
  return edges;
}

std::vector<std::uint64_t> delay_histogram(const std::vector<double>& ms) {
  const std::vector<double>& edges = delay_hist_edges_ms();
  std::vector<std::uint64_t> counts(edges.size() + 1, 0);
  for (double v : ms) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    ++counts[static_cast<std::size_t>(it - edges.begin())];
  }
  return counts;
}

// ---------------------------------------------------------------------------
// Runner

namespace {

// Type-erased ownership of the per-kind source objects (they share an
// install() shape, not a base class).
struct AnySource {
  virtual ~AnySource() = default;
};
template <class S>
struct SourceHolder final : AnySource {
  template <class... A>
  explicit SourceHolder(A&&... a) : src(std::forward<A>(a)...) {}
  S src;
};

template <class S, class... A>
void emplace_source(std::vector<std::unique_ptr<AnySource>>& owned,
                    EventQueue& ev, Link& link, A&&... a) {
  auto h = std::make_unique<SourceHolder<S>>(std::forward<A>(a)...);
  S& s = h->src;
  owned.push_back(std::move(h));
  s.install(ev, link);
}

void install_source(const ScenarioSource& s, ClassId cls, EventQueue& ev,
                    Link& link, std::vector<std::unique_ptr<AnySource>>& owned) {
  switch (s.kind) {
    case ScenarioSource::Kind::kCbr:
      emplace_source<CbrSource>(owned, ev, link, cls, s.rate, s.pkt_len,
                                s.start, s.stop);
      break;
    case ScenarioSource::Kind::kPoisson:
      emplace_source<PoissonSource>(owned, ev, link, cls, s.rate, s.pkt_len,
                                    s.start, s.stop, s.seed);
      break;
    case ScenarioSource::Kind::kOnOff:
      emplace_source<OnOffSource>(owned, ev, link, cls, s.rate, s.pkt_len,
                                  s.mean_on, s.mean_off, s.start, s.stop,
                                  s.seed);
      break;
    case ScenarioSource::Kind::kPareto:
      emplace_source<ParetoBurstSource>(owned, ev, link, cls, s.rate,
                                        s.pkt_len, s.mean_on, s.mean_off,
                                        s.alpha, s.start, s.stop, s.seed);
      break;
    case ScenarioSource::Kind::kGreedy:
      emplace_source<GreedySource>(owned, ev, link, cls, s.pkt_len, s.window,
                                   s.start, s.stop);
      break;
    case ScenarioSource::Kind::kTcpish:
      emplace_source<TcpishSource>(owned, ev, link, cls, s.pkt_len, s.window,
                                   s.start, s.stop);
      break;
    case ScenarioSource::Kind::kVideo:
      emplace_source<VideoSource>(owned, ev, link, cls, s.fps, s.mean_frame,
                                  s.max_frame, s.mtu, s.start, s.stop, s.seed);
      break;
  }
}

// Per-node live state while the simulation runs: the compiled scheduler
// plus the name -> id view the timed events mutate, and the full id
// provenance of every class name for merged reporting.
struct NodeRun {
  Topology::NodeIndex idx = 0;
  HierarchySpec spec;           // the node's static classes
  HierarchySpec::IdMap ids;     // static name -> id
  Hfsc* hfsc = nullptr;         // non-null when the family is H-FSC
  // Current name -> id (starts as `ids`; timed creates/deletes move it).
  std::map<std::string, ClassId> live;
  // Every id a name ever had on this node, creation order (a deleted and
  // re-created class reports the union of its incarnations).
  std::map<std::string, std::vector<ClassId>> history;
  // Timed-created names in first-creation order (report after statics);
  // `at_seen` mirrors it for O(log n) membership at churn scale.
  std::vector<std::string> at_names;
  std::set<std::string> at_seen;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_num(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  os << tmp.str();
}

void json_hist(std::ostream& os, const std::vector<std::uint64_t>& hist) {
  os << '[';
  for (std::size_t i = 0; i < hist.size(); ++i) {
    if (i) os << ',';
    os << hist[i];
  }
  os << ']';
}

}  // namespace

ScenarioResult run_scenario(const Scenario& sc) {
  return run_scenario(sc, ScenarioRunOptions{});
}

ScenarioResult run_scenario(const Scenario& sc,
                            const ScenarioRunOptions& opts) {
  const SchedulerKind kind = opts.scheduler.value_or(sc.scheduler);
  const bool admission = opts.admission || sc.admission;
  if (!opts.checkpoint_path.empty() && kind != SchedulerKind::kHfsc) {
    throw std::runtime_error(
        "checkpointing requires the hfsc scheduler (running " +
        std::string(to_string(kind)) + ")");
  }
  if (!opts.checkpoint_path.empty() && sc.nodes.size() > 1) {
    throw std::runtime_error(
        "checkpointing is limited to single-node scenarios");
  }
  const bool has_class_events =
      std::any_of(sc.events.begin(), sc.events.end(), [](const auto& e) {
        return e.kind == ScenarioEvent::Kind::kAddClass ||
               e.kind == ScenarioEvent::Kind::kDeleteClass;
      });
  if (has_class_events && kind != SchedulerKind::kHfsc) {
    throw std::runtime_error(
        "timed class events require the hfsc scheduler (running " +
        std::string(to_string(kind)) + ")");
  }

  EventQueue ev;
  Topology topo(ev, sc.window);
  std::vector<NodeRun> runs;
  runs.reserve(sc.nodes.size());

  ScenarioResult out;
  for (const ScenarioNode& n : sc.nodes) {
    NodeRun nr;
    nr.spec = sc.node_hierarchy_spec(n.name);
    HierarchySpec::CompileOptions copts;
    copts.audit_every = opts.audit_every;
    copts.admission = admission;
    HierarchySpec::Compiled compiled = nr.spec.compile(kind, n.rate, copts);
    nr.hfsc = compiled.hfsc;
    nr.ids = std::move(compiled.ids);
    nr.idx = topo.add_node(n.name, n.rate, std::move(compiled.sched));
    for (const auto& [cname, id] : nr.ids) {
      nr.live.emplace(cname, id);
      nr.history[cname].push_back(id);
    }
    for (std::string& note : compiled.notes) {
      out.notes.push_back(sc.multi_node ? n.name + ": " + std::move(note)
                                        : std::move(note));
    }
    runs.push_back(std::move(nr));
  }
  auto node_run = [&](const std::string& nm) -> NodeRun& {
    for (std::size_t i = 0; i < sc.nodes.size(); ++i) {
      if (sc.nodes[i].name == nm) return runs[i];
    }
    throw std::runtime_error("unknown node " + nm);  // unreachable post-parse
  };

  // Wire the routes (parse order == Topology route index order).
  for (const ScenarioRoute& r : sc.routes) {
    std::vector<Topology::Hop> hops;
    for (const std::string& nn : r.nodes) {
      NodeRun& nr = node_run(nn);
      const auto it = nr.ids.find(r.cls);
      if (it == nr.ids.end()) {
        throw std::runtime_error("routed class '" + r.cls +
                                 "' was dropped by the " +
                                 std::string(to_string(kind)) + " mapping");
      }
      hops.push_back(Topology::Hop{nr.idx, it->second});
    }
    topo.add_route(std::move(hops));
  }

  // Resolve the static source list: copies so stop/delete events can
  // truncate stop times without touching the caller's Scenario.
  std::vector<ScenarioSource> static_srcs = sc.sources;
  std::vector<ScenarioSource> timed_srcs;
  for (const ScenarioEvent& e : sc.events) {
    if (e.kind == ScenarioEvent::Kind::kStartSource) {
      timed_srcs.push_back(e.src);
    }
  }
  {
    // Index sources by (node, class) so a churn scenario with 100k
    // stop/delete events doesn't rescan every source per event.
    std::map<std::pair<std::string, std::string>, std::vector<ScenarioSource*>>
        by_cls;
    for (ScenarioSource& s : static_srcs) by_cls[{s.node, s.cls}].push_back(&s);
    for (ScenarioSource& s : timed_srcs) by_cls[{s.node, s.cls}].push_back(&s);
    for (const ScenarioEvent& e : sc.events) {
      if (e.kind != ScenarioEvent::Kind::kStopSources &&
          e.kind != ScenarioEvent::Kind::kDeleteClass) {
        continue;
      }
      const auto it = by_cls.find({e.node, e.target});
      if (it == by_cls.end()) continue;
      for (ScenarioSource* s : it->second) {
        if (s->start <= e.at && s->stop > e.at) s->stop = e.at;
      }
    }
  }

  std::vector<std::unique_ptr<AnySource>> owned;
  // Static sources first, in file order — the exact install sequence the
  // single-link engine used, which the bit-identity tests pin.
  for (const ScenarioSource& s : static_srcs) {
    NodeRun& nr = node_run(s.node);
    const auto it = nr.ids.find(s.cls);
    if (it == nr.ids.end()) {
      // Flat families drop interior classes; a source may only feed a leaf
      // anyway, so a missing id means the scenario misattached a source.
      throw std::runtime_error("source class '" + s.cls +
                               "' was dropped by the " +
                               std::string(to_string(kind)) + " mapping");
    }
    install_source(s, it->second, ev, topo.link(nr.idx), owned);
  }

  // Timed control plane.  Class creations/deletions at the same (node,
  // time) coalesce into ONE transaction: Txn validation copies the whole
  // hierarchy per commit, so per-op commits would make a 100k-flow churn
  // step quadratic.  A batch refused by admission control falls back to
  // per-op commits so each class gets its own verdict (the flash-crowd
  // behaviour Section II's feasibility test implies).
  std::uint64_t classes_rejected = 0;
  std::uint64_t sources_skipped = 0;
  struct Group {
    TimeNs at = 0;
    NodeRun* nr = nullptr;
    std::vector<const ScenarioEvent*> ops;  // adds + deletes, file order
    std::size_t line = 0;
  };
  std::vector<Group> groups;
  {
    std::map<std::pair<TimeNs, NodeRun*>, std::size_t> group_of;
    for (const ScenarioEvent& e : sc.events) {
      if (e.kind != ScenarioEvent::Kind::kAddClass &&
          e.kind != ScenarioEvent::Kind::kDeleteClass) {
        continue;
      }
      NodeRun* nr = &node_run(e.node);
      const auto [it, fresh] =
          group_of.try_emplace({e.at, nr}, groups.size());
      if (fresh) groups.push_back(Group{e.at, nr, {}, e.line});
      Group& g = groups[it->second];
      g.ops.push_back(&e);
      g.line = std::min(g.line, e.line);
    }
  }
  std::stable_sort(groups.begin(), groups.end(),
                   [](const Group& a, const Group& b) {
                     return a.at != b.at ? a.at < b.at : a.line < b.line;
                   });

  auto run_group = [&classes_rejected](
                       NodeRun& nr,
                       const std::vector<const ScenarioEvent*>& ops) {
    // Deletes first: they free admission capacity the adds then claim.
    std::vector<const ScenarioEvent*> ordered = ops;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const ScenarioEvent* a, const ScenarioEvent* b) {
                       return (a->kind == ScenarioEvent::Kind::kDeleteClass) >
                              (b->kind == ScenarioEvent::Kind::kDeleteClass);
                     });
    auto apply_one = [&](const ScenarioEvent& e,
                         std::map<std::string, ClassId>& view, Hfsc::Txn& txn,
                         std::vector<std::pair<std::string, ClassId>>* adds)
        -> bool {
      if (e.kind == ScenarioEvent::Kind::kDeleteClass) {
        const auto it = view.find(e.target);
        if (it == view.end()) return true;  // creation was rejected earlier
        txn.delete_class(it->second);
        view.erase(it);
        return true;
      }
      ClassId parent = kRootClass;
      if (e.cls.parent != "root") {
        const auto it = view.find(e.cls.parent);
        if (it == view.end()) return false;  // parent rejected: cascade
        parent = it->second;
      }
      const ClassId id = txn.add_class(parent, e.cls.cfg);
      if (e.cls.qlimit != 0) txn.set_queue_limit(id, e.cls.qlimit);
      view[e.cls.name] = id;
      adds->emplace_back(e.cls.name, id);
      return true;
    };
    auto bookkeep = [&nr](const std::string& name, ClassId id) {
      nr.live[name] = id;
      auto& hist = nr.history[name];
      if (std::find(hist.begin(), hist.end(), id) == hist.end()) {
        hist.push_back(id);
      }
      if (nr.ids.find(name) == nr.ids.end() &&
          nr.at_seen.insert(name).second) {
        nr.at_names.push_back(name);
      }
    };

    // Batch attempt.
    {
      Hfsc::Txn txn = nr.hfsc->begin();
      std::map<std::string, ClassId> view = nr.live;
      std::vector<std::pair<std::string, ClassId>> adds;
      std::uint64_t cascades = 0;
      for (const ScenarioEvent* e : ordered) {
        if (!apply_one(*e, view, txn, &adds)) ++cascades;
      }
      bool ok = false;
      if (txn.num_ops() == 0) {
        txn.rollback();
        ok = true;
      } else {
        try {
          txn.commit();
          ok = true;
        } catch (const Error& err) {
          if (err.code() != Errc::kAdmissionRejected) throw;
          txn.rollback();
        }
      }
      if (ok) {
        nr.live = std::move(view);
        for (auto& [name, id] : adds) bookkeep(name, id);
        classes_rejected += cascades;
        return;
      }
    }
    // Per-op fallback: each mutation gets its own verdict.
    for (const ScenarioEvent* e : ordered) {
      Hfsc::Txn txn = nr.hfsc->begin();
      std::map<std::string, ClassId> view = nr.live;
      std::vector<std::pair<std::string, ClassId>> adds;
      if (!apply_one(*e, view, txn, &adds)) {
        ++classes_rejected;
        txn.rollback();
        continue;
      }
      if (txn.num_ops() == 0) {
        txn.rollback();
        nr.live = std::move(view);
        continue;
      }
      try {
        txn.commit();
        nr.live = std::move(view);
        for (auto& [name, id] : adds) bookkeep(name, id);
      } catch (const Error& err) {
        if (err.code() != Errc::kAdmissionRejected) throw;
        ++classes_rejected;
        txn.rollback();
      }
    }
  };

  for (Group& g : groups) {
    NodeRun* nr = g.nr;
    auto ops = g.ops;
    ev.schedule(g.at, [&run_group, nr, ops](TimeNs) {
      run_group(*nr, ops);
    });
  }
  // Timed source starts run after any class group at the same instant
  // (scheduled later at equal time => later in tie-break order), and look
  // the class id up at fire time so they bind to the live incarnation.
  for (const ScenarioSource& s : timed_srcs) {
    NodeRun& nr = node_run(s.node);
    Link& link = topo.link(nr.idx);
    ev.schedule(s.start,
                [s, &nr, &link, &ev, &owned, &sources_skipped](TimeNs) {
                  const auto it = nr.live.find(s.cls);
                  if (it == nr.live.end()) {
                    ++sources_skipped;  // class rejected or already deleted
                    return;
                  }
                  install_source(s, it->second, ev, link, owned);
                });
  }

  topo.run(sc.duration);

  if (!opts.checkpoint_path.empty()) {
    std::ofstream ck(opts.checkpoint_path);
    if (!ck) {
      throw std::runtime_error("cannot write checkpoint: " +
                               opts.checkpoint_path);
    }
    checkpoint(*runs.front().hfsc, ck);
  }

  // ---- gather -------------------------------------------------------------
  out.duration = sc.duration;
  out.scheduler = std::string(topo.scheduler(runs.front().idx).name());
  out.classes_rejected = classes_rejected;
  if (sources_skipped != 0) {
    out.notes.push_back(std::to_string(sources_skipped) +
                        " timed source start(s) skipped (class not live)");
  }
  if (runs.front().hfsc != nullptr) {
    out.state_digest = state_digest(*runs.front().hfsc);
  }

  for (std::size_t ni = 0; ni < sc.nodes.size(); ++ni) {
    NodeRun& nr = runs[ni];
    Scheduler& sched = topo.scheduler(nr.idx);
    const FlowTracker& t = topo.tracker(nr.idx);

    auto report = [&](const std::string& cname) {
      const auto hit = nr.history.find(cname);
      if (hit == nr.history.end() || hit->second.empty()) return;  // dropped
      const std::vector<ClassId>& ids = hit->second;
      const bool leaf = nr.spec.is_leaf(cname) ||
                        nr.ids.find(cname) == nr.ids.end();
      const bool any_data = std::any_of(ids.begin(), ids.end(),
                                        [&](ClassId id) { return t.has(id); });
      if (!leaf && !any_data) return;  // interior class: no direct traffic
      ScenarioResult::PerClass pc;
      pc.name = cname;
      pc.node = sc.nodes[ni].name;
      SampleSet delay_ns;
      for (ClassId id : ids) {
        pc.packets += t.packets(id);
        pc.bytes += t.bytes(id);
        pc.dropped += sched.class_drops(id);
        pc.rate_mbps += t.rate_mbps(id, 0, sc.duration);
        for (double v : t.delay_samples_ns(id).samples()) delay_ns.add(v);
      }
      pc.mean_delay_ms = delay_ns.mean() / 1e6;
      pc.p99_delay_ms = delay_ns.quantile(0.99) / 1e6;
      pc.max_delay_ms = delay_ns.max() / 1e6;
      std::vector<double> ms;
      ms.reserve(delay_ns.samples().size());
      for (double v : delay_ns.samples()) ms.push_back(v / 1e6);
      pc.hist = delay_histogram(ms);
      out.per_class.push_back(std::move(pc));
    };
    for (const ScenarioClass& c : sc.classes) {
      if (c.node == sc.nodes[ni].name) report(c.name);
    }
    for (const std::string& cname : nr.at_names) report(cname);

    ScenarioResult::NodeStats ns;
    ns.name = sc.nodes[ni].name;
    Link& link = topo.link(nr.idx);
    ns.link_utilization = static_cast<double>(link.busy_time()) /
                          static_cast<double>(sc.duration);
    ns.offered = topo.offered(nr.idx);
    ns.sent = link.packets_sent();
    std::set<ClassId> seen_ids;
    for (const auto& [cname, ids] : nr.history) {
      for (ClassId id : ids) {
        if (seen_ids.insert(id).second) ns.dropped += sched.class_drops(id);
      }
    }
    ns.rejected = sched.counters().rejected_packets();
    ns.backlog = sched.backlog_packets() + link.in_service();
    ns.peak_backlog_pkts = topo.peak_backlog_packets(nr.idx);
    ns.peak_backlog_bytes = topo.peak_backlog_bytes(nr.idx);
    out.nodes.push_back(std::move(ns));
  }

  for (std::size_t ri = 0; ri < sc.routes.size(); ++ri) {
    ScenarioResult::EndToEnd ee;
    ee.cls = sc.routes[ri].cls;
    ee.route = sc.routes[ri].nodes;
    ee.delivered = topo.delivered(ri);
    ee.bytes = topo.delivered_bytes(ri);
    const SampleSet& d = topo.e2e_delay_ms(ri);
    ee.mean_delay_ms = d.mean();
    ee.p99_delay_ms = d.quantile(0.99);
    ee.max_delay_ms = d.max();
    ee.hist = delay_histogram(d.samples());
    out.e2e.push_back(std::move(ee));
  }

  out.link_utilization = out.nodes.front().link_utilization;
  return out;
}

CompareResult run_compare(const Scenario& sc,
                          const std::vector<SchedulerKind>& kinds,
                          const ScenarioRunOptions& opts) {
  CompareResult out;
  for (SchedulerKind kind : kinds) {
    ScenarioRunOptions per_run = opts;
    per_run.scheduler = kind;
    per_run.checkpoint_path.clear();  // H-FSC-only; ambiguous across runs
    out.runs.push_back(run_scenario(sc, per_run));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Conservation totals

std::uint64_t ScenarioResult::offered() const noexcept {
  std::uint64_t v = 0;
  for (const NodeStats& n : nodes) v += n.offered;
  return v;
}
std::uint64_t ScenarioResult::sent() const noexcept {
  std::uint64_t v = 0;
  for (const NodeStats& n : nodes) v += n.sent;
  return v;
}
std::uint64_t ScenarioResult::dropped() const noexcept {
  std::uint64_t v = 0;
  for (const NodeStats& n : nodes) v += n.dropped;
  return v;
}
std::uint64_t ScenarioResult::rejected() const noexcept {
  std::uint64_t v = 0;
  for (const NodeStats& n : nodes) v += n.rejected;
  return v;
}
std::uint64_t ScenarioResult::backlog() const noexcept {
  std::uint64_t v = 0;
  for (const NodeStats& n : nodes) v += n.backlog;
  return v;
}
bool ScenarioResult::conserved() const noexcept {
  return std::all_of(nodes.begin(), nodes.end(),
                     [](const NodeStats& n) { return n.conserved(); });
}

// ---------------------------------------------------------------------------
// Rendering

std::string CompareResult::to_table() const {
  // One row per class that appeared in any run; a family that dropped the
  // class shows "-".  Classes keep first-appearance order, labelled
  // "node.class" when a run spans several nodes.
  const bool multi =
      !runs.empty() && runs.front().nodes.size() > 1;
  auto label = [multi](const ScenarioResult::PerClass& pc) {
    return multi ? pc.node + "." + pc.name : pc.name;
  };
  std::vector<std::string> names;
  for (const ScenarioResult& r : runs) {
    for (const auto& pc : r.per_class) {
      if (std::find(names.begin(), names.end(), label(pc)) == names.end()) {
        names.push_back(label(pc));
      }
    }
  }
  std::vector<std::string> headers = {"class"};
  for (const ScenarioResult& r : runs) {
    headers.push_back(r.scheduler + " mean_ms");
    headers.push_back(r.scheduler + " p99_ms");
    headers.push_back(r.scheduler + " rate_mbps");
    headers.push_back(r.scheduler + " drops");
  }
  TablePrinter table(headers);
  for (const std::string& name : names) {
    std::vector<std::string> row = {name};
    for (const ScenarioResult& r : runs) {
      const auto it =
          std::find_if(r.per_class.begin(), r.per_class.end(),
                       [&](const auto& pc) { return label(pc) == name; });
      if (it == r.per_class.end()) {
        row.insert(row.end(), {"-", "-", "-", "-"});
      } else {
        row.push_back(TablePrinter::fmt(it->mean_delay_ms));
        row.push_back(TablePrinter::fmt(it->p99_delay_ms));
        row.push_back(TablePrinter::fmt(it->rate_mbps, 2));
        row.push_back(std::to_string(it->dropped));
      }
    }
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << table.to_string();
  for (const ScenarioResult& r : runs) {
    os << r.scheduler << " link utilization: "
       << TablePrinter::fmt(r.link_utilization * 100.0, 1) << "%\n";
  }
  return os.str();
}

std::string ScenarioResult::to_table() const {
  std::ostringstream os;
  if (nodes.size() <= 1 && e2e.empty()) {
    // The historical single-link format, byte-for-byte (pinned by the
    // engine-equivalence tests).
    TablePrinter table({"class", "packets", "bytes", "dropped", "mean_ms",
                        "p99_ms", "max_ms", "rate_mbps"});
    for (const PerClass& pc : per_class) {
      table.add_row({pc.name, std::to_string(pc.packets),
                     std::to_string(pc.bytes), std::to_string(pc.dropped),
                     TablePrinter::fmt(pc.mean_delay_ms),
                     TablePrinter::fmt(pc.p99_delay_ms),
                     TablePrinter::fmt(pc.max_delay_ms),
                     TablePrinter::fmt(pc.rate_mbps, 2)});
    }
    os << table.to_string();
    os << "link utilization: "
       << TablePrinter::fmt(link_utilization * 100.0, 1) << "%\n";
    return os.str();
  }
  for (const NodeStats& ns : nodes) {
    os << "node " << ns.name << "\n";
    TablePrinter table({"class", "packets", "bytes", "dropped", "mean_ms",
                        "p99_ms", "max_ms", "rate_mbps"});
    for (const PerClass& pc : per_class) {
      if (pc.node != ns.name) continue;
      table.add_row({pc.name, std::to_string(pc.packets),
                     std::to_string(pc.bytes), std::to_string(pc.dropped),
                     TablePrinter::fmt(pc.mean_delay_ms),
                     TablePrinter::fmt(pc.p99_delay_ms),
                     TablePrinter::fmt(pc.max_delay_ms),
                     TablePrinter::fmt(pc.rate_mbps, 2)});
    }
    os << table.to_string();
    os << "link utilization: "
       << TablePrinter::fmt(ns.link_utilization * 100.0, 1)
       << "%  conservation: offered " << ns.offered << " = sent " << ns.sent
       << " + dropped " << ns.dropped << " + rejected " << ns.rejected
       << " + backlog " << ns.backlog
       << (ns.conserved() ? "" : "  [VIOLATED]") << "\n\n";
  }
  if (!e2e.empty()) {
    os << "end-to-end\n";
    TablePrinter table({"class", "route", "delivered", "bytes", "mean_ms",
                        "p99_ms", "max_ms"});
    for (const EndToEnd& ee : e2e) {
      std::string route;
      for (const std::string& n : ee.route) {
        if (!route.empty()) route += ">";
        route += n;
      }
      table.add_row({ee.cls, route, std::to_string(ee.delivered),
                     std::to_string(ee.bytes),
                     TablePrinter::fmt(ee.mean_delay_ms),
                     TablePrinter::fmt(ee.p99_delay_ms),
                     TablePrinter::fmt(ee.max_delay_ms)});
    }
    os << table.to_string();
  }
  return os.str();
}

std::string ScenarioResult::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"hfsc-sim-report-v1\"";
  os << ",\"scheduler\":\"" << json_escape(scheduler) << "\"";
  os << ",\"duration_ns\":" << duration;
  os << ",\"link_utilization\":";
  json_num(os, link_utilization);
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(state_digest));
    os << ",\"state_digest\":\"" << buf << "\"";
  }
  os << ",\"classes_rejected\":" << classes_rejected;
  os << ",\"conserved\":" << (conserved() ? "true" : "false");
  os << ",\"totals\":{\"offered\":" << offered() << ",\"sent\":" << sent()
     << ",\"dropped\":" << dropped() << ",\"rejected\":" << rejected()
     << ",\"backlog\":" << backlog() << "}";
  os << ",\"hist_edges_ms\":[";
  const auto& edges = delay_hist_edges_ms();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i) os << ',';
    json_num(os, edges[i]);
  }
  os << "]";
  os << ",\"nodes\":[";
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    const NodeStats& ns = nodes[ni];
    if (ni) os << ',';
    os << "{\"name\":\"" << json_escape(ns.name) << "\"";
    os << ",\"link_utilization\":";
    json_num(os, ns.link_utilization);
    os << ",\"offered\":" << ns.offered << ",\"sent\":" << ns.sent
       << ",\"dropped\":" << ns.dropped << ",\"rejected\":" << ns.rejected
       << ",\"backlog\":" << ns.backlog
       << ",\"peak_backlog_pkts\":" << ns.peak_backlog_pkts
       << ",\"peak_backlog_bytes\":" << ns.peak_backlog_bytes
       << ",\"conserved\":" << (ns.conserved() ? "true" : "false");
    os << ",\"classes\":[";
    bool first = true;
    for (const PerClass& pc : per_class) {
      if (pc.node != ns.name) continue;
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"" << json_escape(pc.name) << "\""
         << ",\"packets\":" << pc.packets << ",\"bytes\":" << pc.bytes
         << ",\"dropped\":" << pc.dropped;
      os << ",\"mean_delay_ms\":";
      json_num(os, pc.mean_delay_ms);
      os << ",\"p99_delay_ms\":";
      json_num(os, pc.p99_delay_ms);
      os << ",\"max_delay_ms\":";
      json_num(os, pc.max_delay_ms);
      os << ",\"rate_mbps\":";
      json_num(os, pc.rate_mbps);
      os << ",\"hist\":";
      json_hist(os, pc.hist);
      os << "}";
    }
    os << "]}";
  }
  os << "]";
  os << ",\"e2e\":[";
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEnd& ee = e2e[i];
    if (i) os << ',';
    os << "{\"class\":\"" << json_escape(ee.cls) << "\",\"route\":[";
    for (std::size_t j = 0; j < ee.route.size(); ++j) {
      if (j) os << ',';
      os << '"' << json_escape(ee.route[j]) << '"';
    }
    os << "],\"delivered\":" << ee.delivered << ",\"bytes\":" << ee.bytes;
    os << ",\"mean_delay_ms\":";
    json_num(os, ee.mean_delay_ms);
    os << ",\"p99_delay_ms\":";
    json_num(os, ee.p99_delay_ms);
    os << ",\"max_delay_ms\":";
    json_num(os, ee.max_delay_ms);
    if (ee.bound_ms >= 0) {
      // Static end-to-end delay bound from the analyzer (attached by
      // tools/hfsc_sim); additive — readers of the v1 schema ignore it.
      os << ",\"bound_ms\":";
      json_num(os, ee.bound_ms);
    }
    os << ",\"hist\":";
    json_hist(os, ee.hist);
    os << "}";
  }
  os << "]";
  os << ",\"notes\":[";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(notes[i]) << '"';
  }
  os << "]}";
  return os.str();
}

std::string CompareResult::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"hfsc-sim-compare-v1\",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) os << ',';
    os << runs[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace hfsc
