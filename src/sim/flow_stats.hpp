// Per-class measurement: delays, counts and windowed throughput.
// Attach to a Link as a departure hook.
#pragma once

#include <map>

#include "sched/packet.hpp"
#include "sim/link.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace hfsc {

class FlowTracker {
 public:
  explicit FlowTracker(TimeNs throughput_window = msec(100))
      : window_(throughput_window) {}

  void attach(Link& link) {
    link.add_departure_hook([this](TimeNs t, const Packet& p) {
      Flow& f = flows_.try_emplace(p.cls, window_).first->second;
      ++f.packets;
      f.bytes += p.len;
      f.delay_ns.add(static_cast<double>(t - p.arrival));
      f.throughput.add(t, p.len);
      f.last_departure = t;
    });
  }

  bool has(ClassId cls) const { return flows_.count(cls) != 0; }
  std::uint64_t packets(ClassId cls) const { return get(cls).packets; }
  Bytes bytes(ClassId cls) const { return get(cls).bytes; }
  TimeNs last_departure(ClassId cls) const { return get(cls).last_departure; }

  // Delay statistics in milliseconds.
  double mean_delay_ms(ClassId cls) const {
    return get(cls).delay_ns.mean() / 1e6;
  }
  double max_delay_ms(ClassId cls) const {
    return get(cls).delay_ns.max() / 1e6;
  }
  double delay_quantile_ms(ClassId cls, double q) const {
    return get(cls).delay_ns.quantile(q) / 1e6;
  }
  // Raw per-packet delay samples in nanoseconds, departure order
  // (histogram builders, merging stats across recreated class ids).
  const SampleSet& delay_samples_ns(ClassId cls) const {
    return get(cls).delay_ns;
  }

  // Average goodput over [t0, t1) in Mb/s.
  double rate_mbps(ClassId cls, TimeNs t0, TimeNs t1) const {
    if (!has(cls)) return 0.0;
    return get(cls).throughput.rate_over(t0, t1) * 8.0 / 1e6;
  }

  const WindowedThroughput& series(ClassId cls) const {
    return get(cls).throughput;
  }

 private:
  struct Flow {
    explicit Flow(TimeNs window) : throughput(window) {}
    std::uint64_t packets = 0;
    Bytes bytes = 0;
    TimeNs last_departure = 0;
    SampleSet delay_ns;
    WindowedThroughput throughput;
  };

  const Flow& get(ClassId cls) const {
    static const Flow empty{msec(100)};
    auto it = flows_.find(cls);
    return it == flows_.end() ? empty : it->second;
  }

  TimeNs window_;
  std::map<ClassId, Flow> flows_;
};

}  // namespace hfsc
