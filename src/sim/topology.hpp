// Routed multi-node simulation core: the topology-first generalization
// of Simulator (one link) and Tandem (a fixed chain).
//
// A Topology is a set of named nodes, each owning a Scheduler driving a
// Link plus a FlowTracker, wired by per-class routes: the departure of a
// routed packet at hop k is forwarded — class id rewritten to the next
// node's id space — into hop k+1's link, so service-curve guarantees
// compose across hops exactly as Section II's calculus predicts (Cruz;
// the multi-node setting the paper's link-sharing model lives in).
//
// End-to-end accounting is keyed on the explicit (route, seq) identity
// of each packet — equality compares the full pair, never a folded
// 64-bit key, so distinct packets cannot alias (the collision Tandem
// historically had with `seq ^ (cls << 48)` once seq crossed 2^48).
// Duplicate (route, seq) pairs — two sources feeding the same class each
// number their own packets from zero — are handled FIFO per key, which
// matches the per-class FIFO order every scheduler family preserves.
//
// Per-node "offered" arrival counts (source + forwarded-in) support the
// conservation identity the churn harness asserts:
//     offered == sent + dropped + rejected + backlog        (per node)
// with `sent` from the Link, `dropped`/`rejected`/`backlog` from the
// node's Scheduler.
//
// The scenario engine (sim/scenario.cpp) builds a Topology from parsed
// `node`/`route` directives; tests drive it directly.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/flow_stats.hpp"
#include "sim/link.hpp"
#include "util/errors.hpp"
#include "util/stats.hpp"

namespace hfsc {

class Topology {
 public:
  using NodeIndex = std::size_t;
  static constexpr NodeIndex kNoNode = static_cast<NodeIndex>(-1);

  struct Hop {
    NodeIndex node;
    ClassId cls;  // the class's id within that node's scheduler
  };

  explicit Topology(EventQueue& ev, TimeNs tracker_window = msec(100))
      : ev_(ev), tracker_window_(tracker_window) {}

  // Adds a node owning `sched`; the node's Link transmits at `rate`.
  // Hook installation order per node is fixed here — tracker, then the
  // route exit/forward hook — so results are independent of the order
  // routes are added later.  Throws Error{kInvalidArgument} on a
  // duplicate or empty name.
  NodeIndex add_node(std::string name, RateBps rate,
                     std::unique_ptr<Scheduler> sched);

  // Registers a route of >= 2 hops.  Forwarding is installed at every
  // hop but the last; end-to-end delay runs from first-hop arrival to
  // last-hop departure.  Throws Error{kInvalidArgument} on an unknown
  // node, fewer than 2 hops, or a (node, cls) pair already covered by
  // another route.  Returns the route index.
  std::size_t add_route(std::vector<Hop> hops);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_routes() const noexcept { return routes_.size(); }

  // Index of the named node, or kNoNode.
  NodeIndex find(std::string_view name) const noexcept;

  const std::string& name(NodeIndex n) const { return nodes_.at(n)->name; }
  RateBps rate(NodeIndex n) const { return nodes_.at(n)->rate; }
  Link& link(NodeIndex n) { return *nodes_.at(n)->link; }
  Scheduler& scheduler(NodeIndex n) { return *nodes_.at(n)->sched; }
  const FlowTracker& tracker(NodeIndex n) const {
    return nodes_.at(n)->tracker;
  }

  // Packets that entered the node's link (source arrivals plus
  // forwarded-in traffic) — the `offered` term of the conservation
  // identity.
  std::uint64_t offered(NodeIndex n) const { return nodes_.at(n)->offered; }

  // Peak node occupancy (scheduler backlog plus the packet on the wire),
  // sampled at every arrival — occupancy only grows at arrivals, so
  // arrival sampling captures the true peak.  The sample charges the
  // arriving packet before the scheduler rules on it, so a packet the
  // scheduler immediately drops still counts: the measurement can only
  // overstate, which is the safe direction for validating the analyzer's
  // backlog bounds (measured <= bound).
  std::uint64_t peak_backlog_packets(NodeIndex n) const {
    return nodes_.at(n)->peak_backlog_pkts;
  }
  Bytes peak_backlog_bytes(NodeIndex n) const {
    return nodes_.at(n)->peak_backlog_bytes;
  }

  // --- End-to-end route statistics ---------------------------------------
  std::uint64_t delivered(std::size_t route) const {
    return routes_.at(route).delays_ms.count();
  }
  Bytes delivered_bytes(std::size_t route) const {
    return routes_.at(route).bytes;
  }
  // Delay samples in milliseconds, first-hop arrival to last-hop
  // last-bit departure.
  const SampleSet& e2e_delay_ms(std::size_t route) const {
    return routes_.at(route).delays_ms;
  }
  const std::vector<Hop>& route_hops(std::size_t route) const {
    return routes_.at(route).hops;
  }
  // Entries still awaiting their last-hop departure (in flight or
  // dropped mid-route).
  std::size_t in_flight(std::size_t route) const;

  void run(TimeNs until) { ev_.run_until(until); }
  EventQueue& events() noexcept { return ev_; }

 private:
  struct Fwd {
    Link* next = nullptr;   // next hop's link (null = last hop: record exit)
    ClassId next_cls = 0;
    std::size_t route = 0;
  };
  struct Node {
    std::string name;
    RateBps rate = 0;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<Link> link;
    FlowTracker tracker;
    std::uint64_t offered = 0;
    std::uint64_t peak_backlog_pkts = 0;
    Bytes peak_backlog_bytes = 0;
    // Per-class routing at this node.  `routing` covers every hop
    // (forward or exit); `entry` marks first hops (record entry time on
    // arrival).
    std::unordered_map<ClassId, Fwd> routing;
    std::unordered_map<ClassId, std::size_t> entry;

    explicit Node(TimeNs window) : tracker(window) {}
  };

  // Explicit packet identity: equality compares the full (route, seq)
  // pair, so the map can never alias two distinct packets.
  struct PacketKey {
    std::size_t route;
    std::uint64_t seq;
    bool operator==(const PacketKey& o) const noexcept {
      return route == o.route && seq == o.seq;
    }
  };
  struct PacketKeyHash {
    std::size_t operator()(const PacketKey& k) const noexcept {
      std::uint64_t h = k.seq;
      h ^= static_cast<std::uint64_t>(k.route) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  struct Route {
    std::vector<Hop> hops;
    SampleSet delays_ms;
    Bytes bytes = 0;
    // FIFO of entry times per (route, seq): same-class sources each
    // number from zero, so a key can briefly hold several packets; the
    // per-class FIFO discipline of every hop preserves their order.
    std::unordered_map<PacketKey, std::vector<TimeNs>, PacketKeyHash>
        entries;
  };

  void on_node_arrival(NodeIndex n, TimeNs t, const Packet& p);
  void on_node_departure(NodeIndex n, TimeNs t, const Packet& p);

  EventQueue& ev_;
  TimeNs tracker_window_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, NodeIndex> by_name_;
  std::vector<Route> routes_;
};

}  // namespace hfsc
