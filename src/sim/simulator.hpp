// Convenience bundle: event queue + link + tracker + owned sources.
//
// Typical use (see examples/quickstart.cpp):
//
//     Hfsc sched(mbps(100));
//     ... add classes ...
//     Simulator sim(mbps(100), sched);
//     sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(10));
//     sim.run(sec(10));
//     sim.tracker().mean_delay_ms(audio);
#pragma once

#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/flow_stats.hpp"
#include "sim/link.hpp"
#include "sim/sources.hpp"

namespace hfsc {

class Simulator {
 public:
  Simulator(RateBps link_rate, Scheduler& sched,
            TimeNs throughput_window = msec(100))
      : link_(ev_, link_rate, sched), tracker_(throughput_window) {
    tracker_.attach(link_);
  }

  // Constructs a source in place and installs it.
  template <typename SourceT, typename... Args>
  SourceT& add(Args&&... args) {
    auto src = std::make_unique<Holder<SourceT>>(
        SourceT(std::forward<Args>(args)...));
    SourceT& ref = src->source;
    sources_.push_back(std::move(src));
    ref.install(ev_, link_);
    return ref;
  }

  void run(TimeNs until) { ev_.run_until(until); }
  void run_all() { ev_.run_all(); }

  EventQueue& events() noexcept { return ev_; }
  Link& link() noexcept { return link_; }
  const FlowTracker& tracker() const noexcept { return tracker_; }
  TimeNs now() const noexcept { return ev_.now(); }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename SourceT>
  struct Holder : HolderBase {
    explicit Holder(SourceT s) : source(std::move(s)) {}
    SourceT source;
  };

  EventQueue ev_;
  Link link_;
  FlowTracker tracker_;
  std::vector<std::unique_ptr<HolderBase>> sources_;
};

}  // namespace hfsc
