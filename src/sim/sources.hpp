// Traffic sources (system S11 in DESIGN.md).
//
// Each source installs itself on an EventQueue and emits packets into a
// Link.  The parameter sets mirror the workloads the paper's evaluation
// discusses: low-rate small-packet audio, frame-based video, greedy FTP,
// plus Poisson and trace-driven generators for the property tests.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace hfsc {

// Constant bit-rate: one `pkt_len` packet every pkt_len/rate seconds,
// from `start` until `stop`.
class CbrSource {
 public:
  CbrSource(ClassId cls, RateBps rate, Bytes pkt_len, TimeNs start,
            TimeNs stop);
  void install(EventQueue& ev, Link& link);

 private:
  void emit(EventQueue& ev, Link& link, TimeNs t);

  ClassId cls_;
  Bytes pkt_len_;
  TimeNs interval_;
  TimeNs start_;
  TimeNs stop_;
  std::uint64_t seq_ = 0;
};

// Poisson arrivals of fixed-size packets at `mean_rate` bytes/s.
class PoissonSource {
 public:
  PoissonSource(ClassId cls, RateBps mean_rate, Bytes pkt_len, TimeNs start,
                TimeNs stop, std::uint64_t seed);
  void install(EventQueue& ev, Link& link);

 private:
  void emit(EventQueue& ev, Link& link, TimeNs t);

  ClassId cls_;
  Bytes pkt_len_;
  double mean_gap_ns_;
  TimeNs start_;
  TimeNs stop_;
  Rng rng_;
  std::uint64_t seq_ = 0;
};

// Exponential on-off source: CBR at `peak_rate` during on periods
// (mean `mean_on`), silent during off periods (mean `mean_off`).
class OnOffSource {
 public:
  OnOffSource(ClassId cls, RateBps peak_rate, Bytes pkt_len, TimeNs mean_on,
              TimeNs mean_off, TimeNs start, TimeNs stop, std::uint64_t seed);
  void install(EventQueue& ev, Link& link);

 private:
  void emit(EventQueue& ev, Link& link, TimeNs t);

  ClassId cls_;
  Bytes pkt_len_;
  TimeNs interval_;
  double mean_on_;
  double mean_off_;
  TimeNs start_;
  TimeNs stop_;
  Rng rng_;
  TimeNs on_until_ = 0;
  std::uint64_t seq_ = 0;
};

// Always-backlogged source (greedy FTP): keeps `window` packets queued at
// the link by refilling on every departure of its own class.
class GreedySource {
 public:
  GreedySource(ClassId cls, Bytes pkt_len, std::size_t window, TimeNs start,
               TimeNs stop = kTimeInfinity);
  void install(EventQueue& ev, Link& link);

 private:
  ClassId cls_;
  Bytes pkt_len_;
  std::size_t window_;
  TimeNs start_;
  TimeNs stop_;
  std::uint64_t seq_ = 0;
};

// Frame-based video: every 1/fps seconds a frame of (mean +- jitter)
// bytes, cut into MTU-sized packets emitted back to back.  Exercises the
// paper's "per-frame delay guarantee" use of the (u, d, r) triple, with
// u = max frame size.
class VideoSource {
 public:
  VideoSource(ClassId cls, double fps, Bytes mean_frame, Bytes max_frame,
              Bytes mtu, TimeNs start, TimeNs stop, std::uint64_t seed);
  void install(EventQueue& ev, Link& link);

 private:
  void emit_frame(EventQueue& ev, Link& link, TimeNs t);

  ClassId cls_;
  TimeNs frame_interval_;
  Bytes mean_frame_;
  Bytes max_frame_;
  Bytes mtu_;
  TimeNs start_;
  TimeNs stop_;
  Rng rng_;
  std::uint64_t seq_ = 0;
};

// Pareto-burst on-off source: CBR at `peak_rate` during on periods,
// silent during off periods, with both period lengths drawn from a
// Pareto distribution of shape `alpha` (heavy tails — the self-similar
// burst structure measured in real traffic, unlike OnOffSource's
// exponential periods).  The Pareto scale is chosen so the periods keep
// the requested means: xm = mean * (alpha - 1) / alpha (alpha > 1).
class ParetoBurstSource {
 public:
  ParetoBurstSource(ClassId cls, RateBps peak_rate, Bytes pkt_len,
                    TimeNs mean_on, TimeNs mean_off, double alpha,
                    TimeNs start, TimeNs stop, std::uint64_t seed);
  void install(EventQueue& ev, Link& link);

 private:
  TimeNs draw(double mean) noexcept;
  void emit(EventQueue& ev, Link& link, TimeNs t);

  ClassId cls_;
  Bytes pkt_len_;
  TimeNs interval_;
  double mean_on_;
  double mean_off_;
  double alpha_;
  TimeNs start_;
  TimeNs stop_;
  Rng rng_;
  TimeNs on_until_ = 0;
  std::uint64_t seq_ = 0;
};

// TCP-like window feedback source: keeps a congestion window of packets
// in flight at the link (acked by its own departures), grows the window
// by one packet per delivered window (additive increase) and halves it
// whenever its class records a new drop (multiplicative decrease,
// observed through Scheduler::class_drops).  Give the class a qlimit to
// exercise the feedback loop; without drops the window opens to
// `max_window` and the source behaves like GreedySource.
class TcpishSource {
 public:
  TcpishSource(ClassId cls, Bytes pkt_len, std::size_t max_window,
               TimeNs start, TimeNs stop = kTimeInfinity);
  void install(EventQueue& ev, Link& link);

  std::size_t cwnd() const noexcept { return cwnd_; }

 private:
  void top_up(Link& link, TimeNs t);

  ClassId cls_;
  Bytes pkt_len_;
  std::size_t max_window_;
  TimeNs start_;
  TimeNs stop_;
  std::size_t cwnd_ = 1;
  std::size_t in_flight_ = 0;
  std::size_t acked_ = 0;
  std::uint64_t last_drops_ = 0;
  std::uint64_t seq_ = 0;
};

// Replays an explicit (time, len) schedule; the workhorse of the unit
// tests and the Fig. 2 / Fig. 3 experiments.
class TraceSource {
 public:
  struct Item {
    TimeNs t;
    Bytes len;
  };
  TraceSource(ClassId cls, std::vector<Item> items);
  void install(EventQueue& ev, Link& link);

 private:
  ClassId cls_;
  std::vector<Item> items_;
  std::uint64_t seq_ = 0;
};

}  // namespace hfsc
