// A non-preemptive output link driven by a Scheduler.
//
// Arrivals go straight into the scheduler; whenever the transmitter is
// idle the link asks the scheduler for the next packet and models its
// serialization delay (len / capacity).  If the scheduler is backlogged
// but declines to release a packet (shaping), the link arms a wakeup at
// scheduler.next_wakeup().
//
// Departure observers see every packet with its last-bit departure time —
// the measurement point of Section VI's delay semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace hfsc {

class Link {
 public:
  using DepartureHook = std::function<void(TimeNs, const Packet&)>;

  Link(EventQueue& ev, RateBps capacity, Scheduler& sched)
      : ev_(ev), capacity_(capacity), sched_(sched) {}

  RateBps capacity() const noexcept { return capacity_; }
  Scheduler& scheduler() noexcept { return sched_; }

  void add_departure_hook(DepartureHook hook) {
    hooks_.push_back(std::move(hook));
  }

  // Arrival observers run before the packet enters the scheduler (used by
  // the guarantee checkers to track backlog periods).
  void add_arrival_hook(DepartureHook hook) {
    arrival_hooks_.push_back(std::move(hook));
  }

  // Delivers a packet to the scheduler (last bit arrives at `now`).
  void on_arrival(TimeNs now, Packet pkt) {
    pkt.arrival = now;
    for (const auto& hook : arrival_hooks_) hook(now, pkt);
    sched_.enqueue(now, pkt);
    try_transmit(now);
  }

  Bytes bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t packets_sent() const noexcept { return packets_sent_; }
  // 1 while a packet is on the wire (dequeued from the scheduler, last
  // bit not yet out) — the in-service term of the conservation identity
  //     offered == sent + dropped + rejected + backlog + in_service
  // when a run is cut mid-transmission.
  std::uint64_t in_service() const noexcept { return busy_ ? 1 : 0; }
  // Bytes of the packet currently on the wire (0 when idle) — the
  // byte-valued companion of in_service(), used by the peak-backlog
  // accounting that the analyzer's vertical-deviation bounds are
  // validated against.
  Bytes in_service_bytes() const noexcept { return busy_ ? in_service_len_ : 0; }
  // Total time the transmitter spent busy (link utilization numerator).
  TimeNs busy_time() const noexcept { return busy_time_; }

 private:
  void try_transmit(TimeNs now) {
    if (busy_) return;
    auto pkt = sched_.dequeue(now);
    if (!pkt) {
      arm_wakeup(now);
      return;
    }
    busy_ = true;
    in_service_len_ = pkt->len;
    const TimeNs done = now + tx_time(pkt->len, capacity_);
    busy_time_ += done - now;
    ev_.schedule(done, [this, p = *pkt](TimeNs t) {
      busy_ = false;
      bytes_sent_ += p.len;
      ++packets_sent_;
      for (const auto& hook : hooks_) hook(t, p);
      try_transmit(t);
    });
  }

  void arm_wakeup(TimeNs now) {
    if (sched_.empty()) return;
    TimeNs at = sched_.next_wakeup(now);
    if (at == kTimeInfinity) return;
    if (at <= now) at = now + 1;
    // Generation counter cancels stale wakeups (an arrival may have
    // restarted the transmitter in the meantime).
    const std::uint64_t gen = ++wakeup_gen_;
    ev_.schedule(at, [this, gen](TimeNs t) {
      if (gen == wakeup_gen_ && !busy_) try_transmit(t);
    });
  }

  EventQueue& ev_;
  RateBps capacity_;
  Scheduler& sched_;
  std::vector<DepartureHook> hooks_;
  std::vector<DepartureHook> arrival_hooks_;
  bool busy_ = false;
  Bytes in_service_len_ = 0;
  Bytes bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  TimeNs busy_time_ = 0;
  std::uint64_t wakeup_gen_ = 0;
};

}  // namespace hfsc
