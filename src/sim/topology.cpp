#include "sim/topology.hpp"

#include <algorithm>
#include <utility>

namespace hfsc {

Topology::NodeIndex Topology::add_node(std::string name, RateBps rate,
                                       std::unique_ptr<Scheduler> sched) {
  if (name.empty()) {
    throw Error(Errc::kInvalidArgument, "topology node needs a name");
  }
  if (by_name_.count(name) != 0) {
    throw Error(Errc::kInvalidArgument, "duplicate topology node: " + name);
  }
  if (rate == 0) {
    throw Error(Errc::kInvalidArgument,
                "topology node " + name + " needs a non-zero rate");
  }
  const NodeIndex idx = nodes_.size();
  auto node = std::make_unique<Node>(tracker_window_);
  node->name = std::move(name);
  node->rate = rate;
  node->sched = std::move(sched);
  node->link = std::make_unique<Link>(ev_, rate, *node->sched);
  // Hook order is part of the engine's contract (and of the bit-identity
  // with the single-link Simulator): the tracker observes first, then
  // the routing layer, then any hooks sources add at install time.
  node->tracker.attach(*node->link);
  node->link->add_arrival_hook([this, idx](TimeNs t, const Packet& p) {
    on_node_arrival(idx, t, p);
  });
  node->link->add_departure_hook([this, idx](TimeNs t, const Packet& p) {
    on_node_departure(idx, t, p);
  });
  by_name_.emplace(node->name, idx);
  nodes_.push_back(std::move(node));
  return idx;
}

Topology::NodeIndex Topology::find(std::string_view name) const noexcept {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoNode : it->second;
}

std::size_t Topology::add_route(std::vector<Hop> hops) {
  if (hops.size() < 2) {
    throw Error(Errc::kInvalidArgument,
                "a route needs at least two hops (single-hop classes are "
                "tracked per node already)");
  }
  for (const Hop& h : hops) {
    if (h.node >= nodes_.size()) {
      throw Error(Errc::kInvalidArgument, "route through unknown node");
    }
  }
  const std::size_t idx = routes_.size();
  for (std::size_t i = 0; i < hops.size(); ++i) {
    Node& node = *nodes_[hops[i].node];
    if (node.routing.count(hops[i].cls) != 0) {
      throw Error(Errc::kInvalidArgument,
                  "class already routed at node " + node.name);
    }
    Fwd fwd;
    fwd.route = idx;
    if (i + 1 < hops.size()) {
      fwd.next = nodes_[hops[i + 1].node]->link.get();
      fwd.next_cls = hops[i + 1].cls;
    }
    node.routing.emplace(hops[i].cls, fwd);
  }
  nodes_[hops.front().node]->entry.emplace(hops.front().cls, idx);
  Route r;
  r.hops = std::move(hops);
  routes_.push_back(std::move(r));
  return idx;
}

std::size_t Topology::in_flight(std::size_t route) const {
  std::size_t n = 0;
  for (const auto& [key, fifo] : routes_.at(route).entries) {
    n += fifo.size();
  }
  return n;
}

void Topology::on_node_arrival(NodeIndex n, TimeNs t, const Packet& p) {
  Node& node = *nodes_[n];
  ++node.offered;
  // Arrival hooks run before the scheduler sees the packet, so the
  // occupancy right after this arrival is the scheduler backlog plus the
  // wire plus the packet itself (see peak_backlog_packets()).
  node.peak_backlog_pkts =
      std::max(node.peak_backlog_pkts,
               node.sched->backlog_packets() + 1 + node.link->in_service());
  node.peak_backlog_bytes = std::max(
      node.peak_backlog_bytes,
      node.sched->backlog_bytes() + p.len + node.link->in_service_bytes());
  const auto it = node.entry.find(p.cls);
  if (it == node.entry.end()) return;
  routes_[it->second].entries[PacketKey{it->second, p.seq}].push_back(t);
}

void Topology::on_node_departure(NodeIndex n, TimeNs t, const Packet& p) {
  Node& node = *nodes_[n];
  const auto it = node.routing.find(p.cls);
  if (it == node.routing.end()) return;
  const Fwd& fwd = it->second;
  if (fwd.next != nullptr) {
    Packet next = p;
    next.cls = fwd.next_cls;
    fwd.next->on_arrival(t, next);
    return;
  }
  // Last hop: close out the (route, seq) entry, FIFO within the key.
  Route& route = routes_[fwd.route];
  const auto entry = route.entries.find(PacketKey{fwd.route, p.seq});
  if (entry == route.entries.end() || entry->second.empty()) return;
  const TimeNs entered = entry->second.front();
  entry->second.erase(entry->second.begin());
  if (entry->second.empty()) route.entries.erase(entry);
  route.delays_ms.add(static_cast<double>(t - entered) / 1e6);
  route.bytes += p.len;
}

}  // namespace hfsc
