#include "sim/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace hfsc {

namespace {

// Every parse failure is a typed Error{kBadTrace} locating the damage:
// the 1-based line number plus the 0-based byte offset of the line's
// first byte, so a corrupted capture can be seeked-to and inspected.
[[noreturn]] void bad_trace(std::size_t lineno, std::size_t offset,
                            const std::string& what) {
  throw Error(Errc::kBadTrace,
              "trace line " + std::to_string(lineno) + " (byte offset " +
                  std::to_string(offset) + "): " + what);
}

}  // namespace

std::vector<TraceEntry> read_trace(std::istream& in) {
  std::vector<TraceEntry> out;
  std::string line;
  std::size_t lineno = 0;
  std::size_t offset = 0;  // byte offset of the current line's start
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t line_start = offset;
    offset += line.size() + 1;  // + '\n' eaten by getline
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TimeNs t;
    ClassId cls;
    Bytes len;
    if (!(ls >> t)) {
      // Blank or comment-only line.
      std::string rest;
      if (!(std::istringstream(line) >> rest)) continue;
      bad_trace(lineno, line_start, "malformed time field");
    }
    if (!(ls >> cls >> len)) {
      bad_trace(lineno, line_start, "expected <time_ns> <class> <len>");
    }
    if (len == 0) bad_trace(lineno, line_start, "zero-length packet");
    if (cls == 0) bad_trace(lineno, line_start, "packet for the root class");
    std::string trailing;
    if (ls >> trailing) {
      bad_trace(lineno, line_start,
                "trailing garbage after <len>: '" + trailing + "'");
    }
    out.push_back(TraceEntry{t, cls, len});
  }
  if (in.bad()) bad_trace(lineno + 1, offset, "stream read failure");
  return out;
}

std::vector<TraceEntry> read_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw Error(Errc::kBadTrace, "cannot open trace file: " + path);
  }
  return read_trace(f);
}

void write_trace(std::ostream& out, const std::vector<TraceEntry>& entries) {
  out << "# <time_ns> <class_id> <len_bytes>\n";
  for (const TraceEntry& e : entries) {
    out << e.t << ' ' << e.cls << ' ' << e.len << '\n';
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceEntry>& entries) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(f, entries);
}

std::vector<TraceSource::Item> items_for_class(
    const std::vector<TraceEntry>& entries, ClassId cls) {
  std::vector<TraceSource::Item> items;
  for (const TraceEntry& e : entries) {
    if (e.cls == cls) items.push_back(TraceSource::Item{e.t, e.len});
  }
  return items;
}

void replay_trace(EventQueue& ev, Link& link,
                  const std::vector<TraceEntry>& entries) {
  std::uint64_t seq = 0;
  for (const TraceEntry& e : entries) {
    ev.schedule(e.t, [&link, e, s = seq++](TimeNs t) {
      link.on_arrival(t, Packet{e.cls, e.len, t, s});
    });
  }
}

}  // namespace hfsc
