#include "sim/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hfsc {

std::vector<TraceEntry> read_trace(std::istream& in) {
  std::vector<TraceEntry> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TimeNs t;
    ClassId cls;
    Bytes len;
    if (!(ls >> t)) {
      // Blank or comment-only line.
      std::string rest;
      if (!(std::istringstream(line) >> rest)) continue;
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": malformed");
    }
    if (!(ls >> cls >> len) || len == 0) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": expected <time_ns> <class> <len>");
    }
    out.push_back(TraceEntry{t, cls, len});
  }
  return out;
}

std::vector<TraceEntry> read_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(f);
}

void write_trace(std::ostream& out, const std::vector<TraceEntry>& entries) {
  out << "# <time_ns> <class_id> <len_bytes>\n";
  for (const TraceEntry& e : entries) {
    out << e.t << ' ' << e.cls << ' ' << e.len << '\n';
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceEntry>& entries) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(f, entries);
}

std::vector<TraceSource::Item> items_for_class(
    const std::vector<TraceEntry>& entries, ClassId cls) {
  std::vector<TraceSource::Item> items;
  for (const TraceEntry& e : entries) {
    if (e.cls == cls) items.push_back(TraceSource::Item{e.t, e.len});
  }
  return items;
}

void replay_trace(EventQueue& ev, Link& link,
                  const std::vector<TraceEntry>& entries) {
  std::uint64_t seq = 0;
  for (const TraceEntry& e : entries) {
    ev.schedule(e.t, [&link, e, s = seq++](TimeNs t) {
      link.on_arrival(t, Packet{e.cls, e.len, t, s});
    });
  }
}

}  // namespace hfsc
