// Chaos / soak harness for the resilience runtime (docs/ROBUSTNESS.md
// Section 11).
//
// run_chaos() drives a RuntimeHost through composed adversity and turns
// every episode into assertions:
//
//   * an overload scenario plus a governor-disabled differential twin:
//     a flash-crowd flood walks the degradation ladder to level 3 and
//     back down, while a token-bucket-conformant rt leaf's measured
//     delays are checked against the analyzer's Theorem 2 bound at
//     EVERY level in both runs — the proof that degradation never
//     touches admitted real-time guarantees — along with full
//     reversibility (clamps undone bit-for-bit, admission headroom
//     restored) and a tightened-admission rejection probe at level 3;
//
//   * kill-and-recover episodes: traffic storms, transaction churn,
//     clock jumps and malformed input run against a host that is
//     crashed (CrashSignal) at a crash point cycling over every
//     journal/checkpoint boundary — after-apply, after-append, torn
//     append, before/after-checkpoint, after-compact — then recovered
//     from the persisted images.  Each recovery must be deterministic
//     (two independent recoveries digest-identical), auditor-clean, and
//     packet-conserving (offered = delivered + dropped + residual,
//     checked per crash-free epoch so a crash can only lose in-flight
//     work, never invent it);
//
//   * corrupt-image probes: garbage journals raise typed kBadJournal,
//     corrupt checkpoints kBadCheckpoint, bit-flipped journal interiors
//     degrade to a clean truncated recovery — never a crash.
//
// Soak mode repeats the episode mix under a wall-clock budget with
// fresh seeds; it is the CI-opt-in (HFSC_SOAK=1) long-running variant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace hfsc {

struct ChaosConfig {
  std::uint64_t seed = 0xC0FFEE;
  // Number of kill-and-recover episodes (each arms exactly one crash;
  // the crash point cycles over the 6 boundary kinds).
  int episodes = 60;
  // Run the overload + differential-twin scenario (slowest single
  // piece; tests can disable it when exercising only crash recovery).
  bool overload_check = true;
  // Soak: keep running episodes until the wall-clock budget is spent.
  bool soak = false;
  int soak_seconds = 60;
};

struct ChaosReport {
  // Volumes.
  int episodes = 0;
  std::uint64_t offered = 0;    // enqueue attempts, malformed included
  std::uint64_t delivered = 0;  // dequeue successes
  // Crash bookkeeping.
  int crashes = 0;
  int recoveries = 0;
  int torn_appends = 0;
  std::uint64_t replayed_records = 0;
  // Overload scenario.
  int max_gov_level = 0;
  std::uint64_t push_outs = 0;
  TimeNs rt_delay_bound = 0;  // analyzer bound for the rt leaf
  TimeNs rt_delay_max_governed = 0;
  TimeNs rt_delay_max_twin = 0;
  // Every violated expectation, human-readable; empty means the run is
  // fully green.
  std::vector<std::string> failures;

  bool ok() const noexcept { return failures.empty(); }
  std::string to_string() const;
};

ChaosReport run_chaos(const ChaosConfig& cfg);

}  // namespace hfsc
