// Chaos / soak harness for the resilience runtime (docs/ROBUSTNESS.md
// Section 11).
//
// run_chaos() drives a RuntimeHost through composed adversity and turns
// every episode into assertions:
//
//   * an overload scenario plus a governor-disabled differential twin:
//     a flash-crowd flood walks the degradation ladder to level 3 and
//     back down, while a token-bucket-conformant rt leaf's measured
//     delays are checked against the analyzer's Theorem 2 bound at
//     EVERY level in both runs — the proof that degradation never
//     touches admitted real-time guarantees — along with full
//     reversibility (clamps undone bit-for-bit, admission headroom
//     restored) and a tightened-admission rejection probe at level 3;
//
//   * kill-and-recover episodes: traffic storms, transaction churn,
//     clock jumps and malformed input run against a host that is
//     crashed (CrashSignal) at a crash point cycling over every
//     journal/checkpoint boundary — after-apply, after-append, torn
//     append, before/after-checkpoint, after-compact — then recovered
//     from the persisted images.  Each recovery must be deterministic
//     (two independent recoveries digest-identical), auditor-clean, and
//     packet-conserving (offered = delivered + dropped + residual,
//     checked per crash-free epoch so a crash can only lose in-flight
//     work, never invent it);
//
//   * corrupt-image probes: garbage journals raise typed kBadJournal,
//     corrupt checkpoints kBadCheckpoint, bit-flipped journal interiors
//     degrade to a clean truncated recovery — never a crash.
//
// Soak mode repeats the episode mix under a wall-clock budget with
// fresh seeds; it is the CI-opt-in (HFSC_SOAK=1) long-running variant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace hfsc {

struct ChaosConfig {
  std::uint64_t seed = 0xC0FFEE;
  // Number of kill-and-recover episodes (each arms exactly one crash;
  // the crash point cycles over the 6 boundary kinds).
  int episodes = 60;
  // Run the overload + differential-twin scenario (slowest single
  // piece; tests can disable it when exercising only crash recovery).
  bool overload_check = true;
  // Soak: keep running episodes until the wall-clock budget is spent.
  bool soak = false;
  int soak_seconds = 60;
  // run_sharded_chaos(): shard count and number of real-threaded
  // fault episodes (each injects one thread-level fault — stall+ring
  // overflow, worker kill, host persistence-boundary crash, or a
  // supervisor outage spanning a crash — into a ShardedRuntime).
  int shards = 4;
  int shard_episodes = 8;
};

struct ChaosReport {
  // The seed the run was driven by — echoed in the summary and in
  // every failure message so any red run is reproducible verbatim.
  std::uint64_t seed = 0;
  // Volumes.
  int episodes = 0;
  std::uint64_t offered = 0;    // enqueue attempts, malformed included
  std::uint64_t delivered = 0;  // dequeue successes
  // Crash bookkeeping.
  int crashes = 0;
  int recoveries = 0;
  int torn_appends = 0;
  std::uint64_t replayed_records = 0;
  // Overload scenario.
  int max_gov_level = 0;
  std::uint64_t push_outs = 0;
  TimeNs rt_delay_bound = 0;  // analyzer bound for the rt leaf
  TimeNs rt_delay_max_governed = 0;
  TimeNs rt_delay_max_twin = 0;
  // Sharded runtime episodes (run_sharded_chaos).
  int shard_episodes = 0;
  int shard_faults = 0;          // thread-level faults injected
  std::uint64_t shard_restarts = 0;  // supervisor restarts observed
  std::uint64_t shard_spilled = 0;   // ring entries drained to spill
  std::uint64_t shard_crash_lost = 0;
  TimeNs shard_rt_delay_bound = 0;
  TimeNs shard_rt_delay_max = 0;  // healthy (never-restarted) shards
  // Every violated expectation, human-readable; empty means the run is
  // fully green.
  std::vector<std::string> failures;

  bool ok() const noexcept { return failures.empty(); }
  std::string to_string() const;
};

// "seed=0x<hex>" — appended to every failure and summary line (the
// reproduction handle; both harness translation units share it).
std::string chaos_seed_tag(std::uint64_t seed);

ChaosReport run_chaos(const ChaosConfig& cfg);

// Real-threaded chaos against the supervised sharded runtime
// (runtime/supervisor.hpp): every episode partitions a per-shard
// rt+bulk hierarchy across cfg.shards shards, drives conformant rt
// traffic plus bulk storms through the MPSC rings from a producer
// thread, and injects one thread-level fault — a stall with a ring
// overflow flood, a worker kill at an arbitrary loop point, a host
// persistence-boundary crash (journal append, torn append, checkpoint
// boundaries), or a worker kill during a supervisor outage.  After the
// supervisor heals the shard the episode asserts: the cross-shard
// conservation identity (presented == sent + dropped + rejected +
// backlog + spilled) exactly at quiesce, double-recovery digest
// equality on every restart, an auditor-clean final state, full
// backlog drain, and healthy shards' measured rt delays within the
// analytic Theorem 2 bound.
ChaosReport run_sharded_chaos(const ChaosConfig& cfg);

}  // namespace hfsc
