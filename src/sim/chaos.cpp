#include "sim/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>

#include "curve/piecewise.hpp"
#include "runtime/host.hpp"
#include "util/rng.hpp"

namespace hfsc {

namespace {

// Every failure carries the run's seed so a red line is reproducible
// verbatim (rep.seed is set before any episode runs).
void fail(ChaosReport& rep, const std::string& what) {
  rep.failures.push_back(what + " [" + chaos_seed_tag(rep.seed) + "]");
}

// Per crash-free epoch packet accounting: everything offered must be
// found again as delivered, dropped (class drops, push-outs, deletions)
// or rejected (malformed) service, or still sit in the backlog.  A
// crash ends the epoch — it may lose in-flight work, never invent it.
struct EpochBase {
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backlog = 0;
};

EpochBase snapshot(const RuntimeHost& h) {
  EpochBase b;
  const Hfsc& s = h.sched();
  for (ClassId c = 1; c < s.num_classes(); ++c) {
    b.sent += s.packets_sent(c);
    b.dropped += s.packets_dropped(c);
  }
  b.rejected = s.data_path_counters().rejected_packets();
  b.backlog = s.backlog_packets();
  return b;
}

void check_epoch(const RuntimeHost& h, const EpochBase& base,
                 std::uint64_t offered_epoch, const std::string& where,
                 ChaosReport& rep) {
  const EpochBase now = snapshot(h);
  const auto accounted =
      static_cast<std::int64_t>(now.sent - base.sent) +
      static_cast<std::int64_t>(now.dropped - base.dropped) +
      static_cast<std::int64_t>(now.rejected - base.rejected) +
      (static_cast<std::int64_t>(now.backlog) -
       static_cast<std::int64_t>(base.backlog));
  if (accounted != static_cast<std::int64_t>(offered_epoch)) {
    fail(rep, where + ": packet conservation broken (offered " +
                  std::to_string(offered_epoch) + ", accounted " +
                  std::to_string(accounted) + ")");
  }
}

// ---------------------------------------------------------------------------
// Overload scenario + governor-disabled differential twin.
// ---------------------------------------------------------------------------

struct OverloadResult {
  TimeNs max_delay = 0;
  std::map<int, TimeNs> max_delay_by_level;
  int max_level = 0;
  std::uint64_t push_outs = 0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  bool clamp_seen = false;
  bool quarantine_seen = false;
  bool tighten_seen = false;
  bool admission_probe_rejected = false;
  bool admission_probe_after_decay_ok = false;
  bool reversed_cleanly = false;
  std::string audit;  // empty = clean
};

RuntimeOptions overload_options(bool governor_on) {
  RuntimeOptions o;
  o.link_rate = mbps(100);
  o.admission_rate = mbps(100);
  o.watchdog_horizon = msec(20);
  o.sample_interval = usec(200);
  o.governor_enabled = governor_on;
  GovernorConfig& g = o.governor;
  g.enter_backlog[0] = 64 * 1024;
  g.enter_backlog[1] = 192 * 1024;
  g.enter_backlog[2] = 480 * 1024;
  g.exit_backlog[0] = 32 * 1024;
  g.exit_backlog[1] = 96 * 1024;
  g.exit_backlog[2] = 240 * 1024;
  g.class_threshold = 160 * 1024;
  g.up_samples = 2;
  g.down_samples = 8;
  g.clamp_fraction = 0.25;
  g.quarantine_after = 4;
  g.quarantine_qlimit = 200;
  g.headroom = 0.75;
  return o;
}

OverloadResult run_overload(bool governor_on) {
  OverloadResult res;
  const RuntimeOptions opts = overload_options(governor_on);
  RuntimeHost host(opts);

  // Fig. 1-style: one guaranteed audio-like leaf, four bulk leaves.
  const ServiceCurve rt_curve = ServiceCurve::linear(mbps(20));
  const ServiceCurve bulk_ls = ServiceCurve::linear(mbps(20));
  const ClassId rt_cls = host.add_class(
      kRootClass, ClassConfig{rt_curve, rt_curve, ServiceCurve{}});
  std::vector<ClassId> bulk;
  for (int i = 0; i < 4; ++i) {
    bulk.push_back(
        host.add_class(kRootClass, ClassConfig::link_share_only(bulk_ls)));
  }

  const Bytes rt_len = 200;
  const TimeNs rt_period = usec(100);  // 2 MB/s, inside the envelope
  const Bytes bulk_len = 1200;
  const TimeNs step = usec(100);
  const TimeNs flood_start = msec(50);
  const TimeNs flood_end = msec(250);

  TimeNs now = usec(1);
  TimeNs next_rt = now;
  TimeNs next_tx = now;
  std::uint64_t seq = 1;
  std::map<std::uint64_t, TimeNs> rt_outstanding;  // seq -> arrival

  auto serve = [&](TimeNs upto) {
    while (next_tx <= upto) {
      std::optional<Packet> p = host.dequeue(next_tx);
      if (!p) {
        next_tx = upto + 1;
        break;
      }
      ++res.delivered;
      if (p->cls == rt_cls) {
        const auto it = rt_outstanding.find(p->seq);
        if (it != rt_outstanding.end()) {
          const TimeNs delay = next_tx - it->second;
          res.max_delay = std::max(res.max_delay, delay);
          auto& slot = res.max_delay_by_level[host.gov_level()];
          slot = std::max(slot, delay);
          rt_outstanding.erase(it);
        }
      }
      next_tx += tx_time(p->len, opts.link_rate);
    }
  };

  const TimeNs horizon = sec(4);
  bool probed = false;
  while (now < horizon) {
    // Serve BEFORE this step's arrivals: the link then never dequeues
    // at a timestamp earlier than a queued packet's arrival (a stale
    // idle-link next_tx would otherwise regress the scheduler clock and
    // corrupt the delay measurement).
    serve(now);
    // Past the flood, run until drained and decayed back to level 0.
    if (now >= flood_end && host.sched().backlog_packets() == 0 &&
        host.gov_level() == 0) {
      break;
    }
    if (now >= next_rt) {
      rt_outstanding[seq] = now;
      host.enqueue(now, Packet{rt_cls, rt_len, now, seq++});
      ++res.offered;
      next_rt += rt_period;
    }
    if (now >= flood_start && now < flood_end) {
      for (const ClassId b : bulk) {
        for (int k = 0; k < 3; ++k) {
          host.enqueue(now, Packet{b, bulk_len, now, seq++});
          ++res.offered;
        }
      }
    }

    res.max_level = std::max(res.max_level, host.gov_level());
    if (governor_on && host.gov_level() == 3 && !probed) {
      probed = true;
      // Level 3 tightens headroom for NEW flows: an rt flow that fits
      // the base link but not base*headroom must be refused here...
      try {
        host.add_class(kRootClass,
                       ClassConfig::real_time_only(ServiceCurve::linear(
                           mbps(60))));  // 20 + 60 > 75 = tightened
      } catch (const Error& e) {
        res.admission_probe_rejected = e.code() == Errc::kAdmissionRejected;
      }
    }
    now += step;
  }

  for (const GovEvent& e : host.drain_events()) {
    if (e.kind == GovEventKind::kClamp) res.clamp_seen = true;
    if (e.kind == GovEventKind::kQuarantine) res.quarantine_seen = true;
    if (e.kind == GovEventKind::kTightenAdmission) res.tighten_seen = true;
  }
  res.push_outs = host.governor().push_outs();

  // ...and the SAME flow must be admitted once the ladder has decayed
  // and the headroom is restored (then cleaned up again).
  if (governor_on && res.admission_probe_rejected) {
    try {
      const ClassId probe = host.add_class(
          kRootClass,
          ClassConfig::real_time_only(ServiceCurve::linear(mbps(60))));
      host.delete_class(probe);
      res.admission_probe_after_decay_ok = true;
    } catch (const Error&) {
      res.admission_probe_after_decay_ok = false;
    }
  }

  // Reversibility: ladder at 0, no clamps or quarantines left, bulk
  // configs byte-identical to the originals, base admission restored.
  bool reversed = host.gov_level() == 0 &&
                  host.governor().clamped().empty() &&
                  host.governor().quarantined().empty();
  for (const ClassId b : bulk) {
    const ServiceCurve& ls = host.sched().config_of(b).ls;
    reversed = reversed && ls.m1 == bulk_ls.m1 && ls.d == bulk_ls.d &&
               ls.m2 == bulk_ls.m2;
  }
  if (host.sched().admission_enabled()) {
    reversed = reversed && host.sched().admission_control()->link_rate() ==
                               opts.admission_rate;
  }
  res.reversed_cleanly = reversed;

  const AuditReport rep = host.audit_runtime();
  if (!rep.ok()) res.audit = rep.to_string();
  return res;
}

void run_overload_check(ChaosReport& rep) {
  // Theorem 2 bound for the rt leaf: the horizontal gap between its
  // token-bucket envelope and its (un-upper-limited) rt guarantee, plus
  // one max-packet transmission time — computed exactly as the static
  // analyzer computes it.
  const ServiceCurve rt_curve = ServiceCurve::linear(mbps(20));
  const PiecewiseLinear env = PiecewiseLinear::token_bucket(2000, mbps(16));
  const PiecewiseLinear guarantee =
      PiecewiseLinear::from_service_curve(rt_curve);
  const auto gap = env.max_horizontal_gap(guarantee);
  if (!gap) {
    fail(rep, "overload: rt envelope unexpectedly overruns the guarantee");
    return;
  }
  const TimeNs bound = sat_add(*gap, tx_time(1500, mbps(100)));
  rep.rt_delay_bound = bound;

  const OverloadResult governed = run_overload(/*governor_on=*/true);
  const OverloadResult twin = run_overload(/*governor_on=*/false);
  rep.max_gov_level = governed.max_level;
  rep.push_outs = governed.push_outs;
  rep.rt_delay_max_governed = governed.max_delay;
  rep.rt_delay_max_twin = twin.max_delay;
  rep.offered += governed.offered + twin.offered;
  rep.delivered += governed.delivered + twin.delivered;

  if (governed.max_level < 3) {
    fail(rep, "overload: flood never drove the ladder to level 3 (reached " +
                  std::to_string(governed.max_level) + ")");
  }
  if (governed.push_outs == 0) {
    fail(rep, "overload: level >= 1 never pushed out a non-rt arrival");
  }
  if (!governed.clamp_seen) fail(rep, "overload: no clamp event at level 2");
  if (!governed.quarantine_seen) {
    fail(rep, "overload: no quarantine event for persistent offenders");
  }
  if (!governed.tighten_seen) {
    fail(rep, "overload: no tighten-admission event at level 3");
  }
  if (!governed.admission_probe_rejected) {
    fail(rep, "overload: tightened admission accepted a flow over headroom");
  }
  if (!governed.admission_probe_after_decay_ok) {
    fail(rep, "overload: admission headroom not restored after decay");
  }
  if (!governed.reversed_cleanly) {
    fail(rep, "overload: degradation was not fully reversed on load decay");
  }
  if (!governed.audit.empty()) {
    fail(rep, "overload: governed run ends audit-dirty: " + governed.audit);
  }
  if (!twin.audit.empty()) {
    fail(rep, "overload: twin run ends audit-dirty: " + twin.audit);
  }
  if (twin.max_level != 0 || twin.push_outs != 0) {
    fail(rep, "overload: governor-disabled twin still degraded");
  }
  // The invariant the whole ladder is built around: admitted rt
  // guarantees hold at every degradation level, governed or not.
  for (const auto& [level, delay] : governed.max_delay_by_level) {
    if (delay > bound) {
      fail(rep, "overload: rt delay " + std::to_string(delay) +
                    " ns exceeds the Theorem 2 bound " +
                    std::to_string(bound) + " ns at governor level " +
                    std::to_string(level));
    }
  }
  if (twin.max_delay > bound) {
    fail(rep, "overload: twin rt delay " + std::to_string(twin.max_delay) +
                  " ns exceeds the Theorem 2 bound " + std::to_string(bound) +
                  " ns");
  }
}

// ---------------------------------------------------------------------------
// Kill-and-recover episodes.
// ---------------------------------------------------------------------------

RuntimeOptions episode_options() {
  RuntimeOptions o;
  o.link_rate = mbps(100);
  o.admission_rate = mbps(100);
  o.watchdog_horizon = msec(50);
  o.sample_interval = usec(500);
  GovernorConfig& g = o.governor;
  g.enter_backlog[0] = 64 * 1024;
  g.enter_backlog[1] = 256 * 1024;
  g.enter_backlog[2] = 1024 * 1024;
  g.exit_backlog[0] = 32 * 1024;
  g.exit_backlog[1] = 128 * 1024;
  g.exit_backlog[2] = 512 * 1024;
  g.class_threshold = 96 * 1024;
  g.up_samples = 2;
  g.down_samples = 4;
  return o;
}

void run_episode(const ChaosConfig& cfg, int ep, ChaosReport& rep) {
  Rng rng(cfg.seed + 0x9E3779B97f4A7C15ULL * static_cast<std::uint64_t>(ep));
  const RuntimeOptions opts = episode_options();

  std::optional<RuntimeHost> host;
  host.emplace(opts);

  // Hierarchy: direct journaled adds plus one txn batch, so both replay
  // paths are exercised from the very first records.
  const ServiceCurve rt_curve = ServiceCurve::linear(mbps(10));
  const ClassId rt_cls = host->add_class(
      kRootClass, ClassConfig{rt_curve, rt_curve, ServiceCurve{}});
  const ClassId org = host->add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(80))));
  std::vector<RuntimeHost::BatchOp> batch;
  for (int i = 0; i < 3; ++i) {
    RuntimeHost::BatchOp op;
    op.kind = RuntimeHost::BatchOp::Kind::kAdd;
    op.parent = org;
    op.cfg = ClassConfig::link_share_only(ServiceCurve::linear(mbps(25)));
    batch.push_back(op);
  }
  host->commit_batch(batch);
  std::vector<ClassId> bulk = {org + 1, org + 2, org + 3};

  EpochBase base = snapshot(*host);
  std::uint64_t offered_epoch = 0;
  std::uint64_t seq = 1;
  TimeNs now = usec(rng.uniform(1, 50));
  TimeNs next_tx = now;
  TimeNs next_checkpoint = now + msec(rng.uniform(4, 9));
  TimeNs next_churn = now + msec(1);
  std::vector<ClassId> scratch;

  const TimeNs episode_len = msec(40);
  const TimeNs crash_at = now + episode_len / 2 + usec(rng.uniform(0, 2000));
  bool crashed = false;
  const int mode = ep % 6;  // 5 crash points + torn append

  auto offer = [&](ClassId cls, Bytes len, TimeNs when) {
    host->enqueue(when, Packet{cls, len, when, seq++});
    ++offered_epoch;
    ++rep.offered;
  };

  auto serve = [&](TimeNs upto) {
    while (next_tx <= upto) {
      std::optional<Packet> p = host->dequeue(next_tx);
      if (!p) {
        next_tx = upto + 1;
        break;
      }
      ++rep.delivered;
      next_tx += tx_time(p->len, opts.link_rate);
    }
  };

  auto recover_now = [&](const char* where) {
    // The persisted pair is read off the dead host — the images ARE the
    // simulated disk; copy before the object goes away.
    const std::string cp = host->checkpoint_image();
    const std::string jr = host->journal_image();
    check_epoch(*host, base, offered_epoch, where, rep);
    ++rep.crashes;
    try {
      RuntimeHost r1 = RuntimeHost::recover(opts, cp, jr);
      RuntimeHost r2 = RuntimeHost::recover(opts, cp, jr);
      if (r1.digest() != r2.digest() ||
          r1.governor().serialize() != r2.governor().serialize()) {
        fail(rep, std::string(where) + ": recovery is not deterministic");
      }
      const AuditReport ar = r1.audit_runtime();
      if (!ar.ok()) {
        fail(rep, std::string(where) + ": recovered state audit-dirty: " +
                      ar.to_string());
      }
      rep.replayed_records += r1.journal().num_records();
      host.emplace(std::move(r1));
      ++rep.recoveries;
    } catch (const Error& e) {
      fail(rep, std::string(where) + ": recovery raised " + e.what());
      host.emplace(opts);  // keep the episode alive for the remainder
    }
    base = snapshot(*host);
    offered_epoch = 0;
    next_tx = now;  // delay tracking for lost packets is abandoned
  };

  const TimeNs end_at = now + episode_len;
  while (now < end_at) {
    // Arrivals: steady rt stream, bursty bulk with flash-crowd storms.
    if (rng.chance(0.8)) offer(rt_cls, 200, now);
    const bool storm =
        now > end_at - (3 * episode_len / 4) && now < end_at - episode_len / 4;
    const int nbulk = storm ? static_cast<int>(rng.uniform(3, 10))
                            : static_cast<int>(rng.uniform(0, 2));
    for (int i = 0; i < nbulk; ++i) {
      offer(bulk[rng.uniform(0, bulk.size() - 1)],
            rng.uniform(400, 1500), now);
    }
    // Malformed input: unknown class, zero length, absurd length; all
    // must be counted, never thrown.
    if (rng.chance(0.02)) offer(9999, 800, now);
    if (rng.chance(0.02)) offer(rt_cls, 0, now);
    if (rng.chance(0.02)) offer(bulk[0], 64u * 1024 * 1024, now);
    // Clock anomalies: an occasional backwards arrival (clamped and
    // counted) and an occasional forward jump.
    if (rng.chance(0.02) && now > msec(2)) offer(bulk[1], 700, now - msec(1));
    if (rng.chance(0.01)) now += msec(2);

    serve(now);

    // Txn churn: scratch leaves come and go under org; an occasionally
    // invalid batch must fail typed and journal nothing.
    if (now >= next_churn) {
      next_churn = now + msec(1);
      if (scratch.size() < 4 && rng.chance(0.7)) {
        const std::size_t before = host->sched().num_classes();
        std::vector<RuntimeHost::BatchOp> ops;
        RuntimeHost::BatchOp add;
        add.kind = RuntimeHost::BatchOp::Kind::kAdd;
        add.parent = org;
        add.cfg = ClassConfig::link_share_only(
            ServiceCurve::linear(mbps(rng.uniform(1, 10))));
        ops.push_back(add);
        RuntimeHost::BatchOp lim;
        lim.kind = RuntimeHost::BatchOp::Kind::kQueueLimit;
        lim.cls = static_cast<ClassId>(before);
        lim.limit = rng.uniform(16, 64);
        ops.push_back(lim);
        host->commit_batch(ops);
        scratch.push_back(static_cast<ClassId>(before));
      } else if (!scratch.empty()) {
        host->delete_class(scratch.back());
        scratch.pop_back();
      }
      if (rng.chance(0.3)) {
        std::vector<RuntimeHost::BatchOp> bad;
        RuntimeHost::BatchOp op;
        op.kind = RuntimeHost::BatchOp::Kind::kChange;
        op.cls = 60000;  // unknown class: the whole batch must fail
        op.now = now;
        op.cfg = ClassConfig::link_share_only(ServiceCurve::linear(mbps(1)));
        bad.push_back(op);
        try {
          host->commit_batch(bad);
          fail(rep, "episode " + std::to_string(ep) +
                        ": invalid batch committed");
        } catch (const Error& e) {
          if (e.code() != Errc::kInvalidClass) {
            fail(rep, "episode " + std::to_string(ep) +
                          ": invalid batch raised wrong error: " + e.what());
          }
        }
      }
    }

    if (now >= next_checkpoint && (!crashed || now >= crash_at + msec(5))) {
      next_checkpoint = now + msec(rng.uniform(4, 9));
      host->save_checkpoint();
    }

    // The kill: every episode crashes exactly once, at a boundary that
    // cycles through all five crash points plus the torn append.
    if (!crashed && now >= crash_at) {
      crashed = true;
      try {
        if (mode < 5) {
          host->arm_crash(kAllCrashPoints[mode]);
          if (kAllCrashPoints[mode] == CrashPoint::kBeforeCheckpoint ||
              kAllCrashPoints[mode] == CrashPoint::kAfterCheckpoint ||
              kAllCrashPoints[mode] == CrashPoint::kAfterCompact) {
            host->save_checkpoint();
          } else {
            host->set_queue_limit(bulk[2], rng.uniform(32, 256));
          }
        } else {
          ++rep.torn_appends;
          host->tear_next_append(rng.uniform(1, 60));
          host->set_queue_limit(bulk[2], rng.uniform(32, 256));
        }
        fail(rep, "episode " + std::to_string(ep) +
                      ": armed crash point never fired");
      } catch (const CrashSignal&) {
        recover_now("crash recovery");
        scratch.clear();  // ids may have been lost with the crash
      }
    }

    now += usec(rng.uniform(20, 120));
  }

  // Quiesce: drain everything, then the books must balance exactly.
  for (int guard = 0; guard < 200000 && host->sched().backlog_packets() > 0;
       ++guard) {
    serve(now);
    now += usec(50);
  }
  check_epoch(*host, base, offered_epoch, "episode end", rep);
  const AuditReport ar = host->audit_runtime();
  if (!ar.ok()) {
    fail(rep, "episode " + std::to_string(ep) +
                  " ends audit-dirty: " + ar.to_string());
  }

  // Replay parity: snapshot, then a few control-plane-only mutations;
  // recovery (= checkpoint + journal replay) must land digest-identical
  // to the live scheduler, byte for byte.
  host->save_checkpoint();
  host->set_queue_limit(bulk[0], 128);
  host->change_class(now, bulk[0],
                     ClassConfig::link_share_only(ServiceCurve::linear(
                         mbps(rng.uniform(5, 30)))));
  host->set_queue_limit(bulk[0], 0);
  try {
    RuntimeHost rec = RuntimeHost::recover(opts, host->checkpoint_image(),
                                           host->journal_image());
    if (rec.digest() != host->digest()) {
      fail(rep, "episode " + std::to_string(ep) +
                    ": replayed recovery digest differs from live state");
    }
  } catch (const Error& e) {
    fail(rep, "episode " + std::to_string(ep) +
                  ": replay-parity recovery raised " + e.what());
  }

  // Corrupt-image probes on a subset of episodes: typed errors and
  // truncation, never a crash.
  if (ep % 7 == 3) {
    const std::string cp = host->checkpoint_image();
    const std::string jr = host->journal_image();
    try {
      RuntimeHost::recover(opts, cp, "this was never a journal");
      fail(rep, "garbage journal accepted");
    } catch (const Error& e) {
      if (e.code() != Errc::kBadJournal) {
        fail(rep, std::string("garbage journal raised wrong error: ") +
                      e.what());
      }
    }
    if (cp.size() > 4) {
      std::string bad_cp = cp;
      bad_cp[0] = 'X';
      try {
        RuntimeHost::recover(opts, bad_cp, jr);
        fail(rep, "corrupt checkpoint accepted");
      } catch (const Error& e) {
        if (e.code() != Errc::kBadCheckpoint) {
          fail(rep, std::string("corrupt checkpoint raised wrong error: ") +
                        e.what());
        }
      }
    }
    if (jr.size() > Journal::kHeaderBytes + 8) {
      // A bit flip past the header is indistinguishable from a torn
      // tail: recovery truncates there and still lands audit-clean.
      std::string bad_jr = jr;
      bad_jr[Journal::kHeaderBytes + 6] ^= 0x40;
      try {
        RuntimeHost r = RuntimeHost::recover(opts, cp, bad_jr);
        if (!r.audit_runtime().ok()) {
          fail(rep, "bit-flipped journal recovery is audit-dirty");
        }
      } catch (const Error& e) {
        fail(rep, std::string("bit-flipped journal raised ") + e.what());
      }
    }
  }

  ++rep.episodes;
}

}  // namespace

std::string chaos_seed_tag(std::uint64_t seed) {
  std::ostringstream os;
  os << "seed=0x" << std::hex << seed;
  return os.str();
}

std::string ChaosReport::to_string() const {
  std::ostringstream os;
  if (episodes > 0 || crashes > 0) {
    os << "chaos: " << episodes << " episodes, " << crashes << " crashes ("
       << torn_appends << " torn appends), " << recoveries << " recoveries, "
       << replayed_records << " journal records replayed ("
       << chaos_seed_tag(seed) << ")\n";
  }
  os << "traffic: " << offered << " offered, " << delivered << " delivered\n";
  if (rt_delay_bound > 0 || max_gov_level > 0) {
    os << "overload: max governor level " << max_gov_level << ", "
       << push_outs << " push-outs, rt delay bound " << rt_delay_bound
       << " ns (governed max " << rt_delay_max_governed << ", twin max "
       << rt_delay_max_twin << ")\n";
  }
  if (shard_episodes > 0) {
    os << "sharded: " << shard_episodes << " episodes, " << shard_faults
       << " faults injected, " << shard_restarts << " supervisor restarts, "
       << shard_spilled << " spilled, " << shard_crash_lost
       << " crash-lost (" << chaos_seed_tag(seed) << ")\n";
    os << "sharded rt: delay bound " << shard_rt_delay_bound
       << " ns, healthy-shard max " << shard_rt_delay_max << " ns\n";
  }
  if (failures.empty()) {
    os << "result: OK (" << chaos_seed_tag(seed) << ")";
  } else {
    os << "result: " << failures.size() << " failure(s) ("
       << chaos_seed_tag(seed) << "):";
    for (const std::string& f : failures) os << "\n  " << f;
  }
  return os.str();
}

ChaosReport run_chaos(const ChaosConfig& cfg) {
  ChaosReport rep;
  rep.seed = cfg.seed;
  if (cfg.overload_check) run_overload_check(rep);
  for (int ep = 0; ep < cfg.episodes; ++ep) run_episode(cfg, ep, rep);
  if (cfg.soak) {
    const auto t0 = std::chrono::steady_clock::now();
    int ep = cfg.episodes;
    while (std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - t0)
               .count() < cfg.soak_seconds) {
      run_episode(cfg, ep++, rep);
    }
  }
  if (rep.recoveries != rep.crashes) {
    fail(rep, "not every crash was recovered (" +
                  std::to_string(rep.recoveries) + "/" +
                  std::to_string(rep.crashes) + ")");
  }
  return rep;
}

}  // namespace hfsc
