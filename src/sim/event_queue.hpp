// Discrete-event engine: a time-ordered queue of callbacks.
//
// Events scheduled for the same instant run in scheduling order (a
// monotone sequence number breaks ties), which keeps every simulation in
// this repository deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace hfsc {

class EventQueue {
 public:
  using Handler = std::function<void(TimeNs)>;

  TimeNs now() const noexcept { return now_; }
  bool empty() const noexcept { return q_.empty(); }
  std::size_t pending() const noexcept { return q_.size(); }

  // Schedules `fn` at absolute time t (>= now).
  void schedule(TimeNs t, Handler fn) {
    q_.push(Event{t < now_ ? now_ : t, seq_++, std::move(fn)});
  }

  // Runs the next event; returns false when none remain.
  bool run_next() {
    if (q_.empty()) return false;
    // Moving the handler out before popping lets it schedule new events.
    Event ev = std::move(const_cast<Event&>(q_.top()));
    q_.pop();
    now_ = ev.t;
    ev.fn(now_);
    return true;
  }

  // Runs events up to and including time `until`; the clock ends at
  // max(now, until).
  void run_until(TimeNs until) {
    while (!q_.empty() && q_.top().t <= until) run_next();
    if (now_ < until) now_ = until;
  }

  void run_all() {
    while (run_next()) {
    }
  }

 private:
  struct Event {
    TimeNs t;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> q_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace hfsc
