// Fault-injection harness for scheduler robustness testing.
//
// FaultInjector sits between a workload and a Scheduler and perturbs the
// stream of events the scheduler sees, modelling the anomalies a
// production scheduler must survive (docs/ROBUSTNESS.md):
//
//  * clock faults — permanent forward jumps (the injector accumulates a
//    skew added to every `now` it forwards) and transient regressions
//    (a single call sees an older clock than its predecessor);
//  * malformed packets — extra packets with a bogus class id, zero
//    length, or a length above the sane cap are injected alongside the
//    real traffic (the hardened data path must reject all of them, so
//    the real traffic's accounting stays exact);
//  * config churn (H-FSC only, via enable_churn) — ephemeral traffic-less
//    classes are added and deleted mid-backlog, designated live leaves
//    are re-shaped with change_class, and queue limits flap.
//
// The injector is itself a Scheduler, so a Simulator or a hand-rolled
// test loop can drive it exactly like the wrapped instance.  Everything
// it does is deterministic in the seed; counts() reports what was
// injected so tests can assert the run actually exercised each fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hfsc.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace hfsc {

struct FaultPlan {
  // Clock anomalies (applied to both enqueue and dequeue clocks).
  double p_clock_jump = 0.0;     // forward jump, uniform in (0, max_jump]
  double p_clock_regress = 0.0;  // transient backwards step
  TimeNs max_jump = msec(20);
  TimeNs max_regress = msec(20);
  // Malformed extra packets, injected before the real event.
  double p_bad_class = 0.0;   // unknown / interior / deleted class id
  double p_zero_len = 0.0;    // zero-length packet to a valid leaf
  double p_oversized = 0.0;   // length above the scheduler's cap
  // Config churn (requires enable_churn).
  double p_queue_limit = 0.0;  // flap a mutable leaf's queue limit
  double p_class_churn = 0.0;  // add/change/delete classes mid-backlog
  // Transactional churn (requires enable_churn): whole batches staged
  // through Hfsc::Txn and either committed or rolled back mid-backlog.
  double p_txn_commit = 0.0;
  double p_txn_abort = 0.0;
  // Checkpoint/restore round trip mid-backlog: serialize, restore into a
  // fresh Hfsc and compare state digests.  The injector keeps driving the
  // ORIGINAL instance; a digest mismatch is counted, not thrown.
  double p_checkpoint = 0.0;
};

struct FaultCounts {
  std::uint64_t clock_jumps = 0;
  std::uint64_t clock_regressions = 0;
  std::uint64_t bad_class_packets = 0;
  std::uint64_t zero_len_packets = 0;
  std::uint64_t oversized_packets = 0;
  std::uint64_t queue_limit_changes = 0;
  std::uint64_t classes_added = 0;
  std::uint64_t classes_changed = 0;
  std::uint64_t classes_deleted = 0;
  std::uint64_t txn_commits = 0;
  std::uint64_t txn_aborts = 0;
  std::uint64_t checkpoint_roundtrips = 0;
  std::uint64_t checkpoint_mismatches = 0;  // restored digest != original

  std::uint64_t total() const noexcept {
    return clock_jumps + clock_regressions + bad_class_packets +
           zero_len_packets + oversized_packets + queue_limit_changes +
           classes_added + classes_changed + classes_deleted + txn_commits +
           txn_aborts + checkpoint_roundtrips;
  }
};

class FaultInjector final : public Scheduler {
 public:
  FaultInjector(Scheduler& inner, FaultPlan plan, std::uint64_t seed)
      : inner_(inner),
        name_("FaultInjector(" + std::string(inner.name()) + ")"),
        plan_(plan),
        rng_(seed) {}

  // Enables class-churn and queue-limit faults.  The injector adds and
  // deletes its own ephemeral (never-backlogged) leaves under
  // `churn_parent`, and applies change_class / set_queue_limit to the
  // caller-designated `mutable_leaves` — it never touches other classes,
  // so the caller controls which parts of the hierarchy may mutate.
  void enable_churn(Hfsc& hfsc, ClassId churn_parent,
                    std::vector<ClassId> mutable_leaves);

  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return inner_.backlog_packets();
  }
  Bytes backlog_bytes() const noexcept override {
    return inner_.backlog_bytes();
  }
  TimeNs next_wakeup(TimeNs now) const noexcept override {
    return inner_.next_wakeup(now);
  }
  SchedCapabilities capabilities() const noexcept override {
    return inner_.capabilities();
  }
  DataPathCounters counters() const noexcept override {
    return inner_.counters();
  }
  std::uint64_t class_drops(ClassId cls) const noexcept override {
    return inner_.class_drops(cls);
  }
  std::string_view name() const noexcept override { return name_; }

  const FaultCounts& counts() const noexcept { return counts_; }
  // Accumulated forward clock skew the inner scheduler currently sees.
  TimeNs skew() const noexcept { return skew_; }

 private:
  // Maps the caller's clock into the (possibly jumped/regressed) clock
  // handed to the inner scheduler.
  TimeNs perturb_now(TimeNs now);
  void inject_packets(TimeNs inner_now);
  void churn(TimeNs inner_now);
  void txn_churn(TimeNs inner_now);
  void checkpoint_roundtrip();

  Scheduler& inner_;
  std::string name_;      // backs the name() view
  Hfsc* hfsc_ = nullptr;  // non-null once churn is enabled
  ClassId churn_parent_ = kRootClass;
  std::vector<ClassId> mutable_leaves_;
  std::vector<ClassId> ephemeral_;  // injector-owned churn classes
  FaultPlan plan_;
  Rng rng_;
  FaultCounts counts_;
  TimeNs skew_ = 0;
};

}  // namespace hfsc
