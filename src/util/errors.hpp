// Typed error model for libhfsc (see docs/ROBUSTNESS.md).
//
// Public scheduler APIs split into two tiers:
//
//  * Control path (add_class / change_class / delete_class /
//    set_queue_limit, constructors): misuse throws hfsc::Error with a
//    machine-readable Errc.  These checks are always on — unlike assert()
//    they survive NDEBUG builds, so a release binary rejects a malformed
//    configuration instead of silently corrupting scheduler state.
//
//  * Data path (enqueue / dequeue): never throws.  Malformed events —
//    packets for unknown/deleted/interior classes, zero-length or
//    oversized packets, a clock handed in that runs backwards — are
//    dropped or clamped and counted, so a scheduler under hostile input
//    degrades gracefully instead of aborting the forwarding plane.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace hfsc {

// Packets above this length are treated as corrupted events by every
// hardened data path (Hfsc allows overriding its own copy of the cap).
inline constexpr Bytes kMaxSanePacketLen = Bytes(1) << 26;  // 64 MiB

enum class Errc {
  kInvalidArgument,     // out-of-domain scalar (zero link rate, zero weight…)
  kInvalidClass,        // class id out of range, root where a class is
                        // required, or refers to a deleted class
  kNotLeaf,             // operation requires a leaf class
  kHasChildren,         // delete_class on a class with live children
  kHasBacklog,          // add_class under a class that queues packets
  kUnsupportedCurve,    // curve shape outside the two-piece algebra
  kMissingCurve,        // class lacks a required rt/ls curve
  kInvariantViolation,  // runtime self-check (auditor) found corruption
  kAdmissionRejected,   // aggregate rt curves would exceed the link curve
  kTxnInvalid,          // commit/rollback on a closed Txn, or staged ids
                        // went stale because the tree mutated outside it
  kBadCheckpoint,       // checkpoint stream is malformed, truncated, or of
                        // an unsupported version
  kBadJournal,          // operation journal is malformed beyond the
                        // recoverable torn-tail case (bad magic/version,
                        // undecodable record, replay divergence)
  kBadTrace,            // trace file is malformed (typed, with the byte
                        // offset of the first bad input)
};

constexpr const char* to_string(Errc c) noexcept {
  switch (c) {
    case Errc::kInvalidArgument: return "invalid argument";
    case Errc::kInvalidClass: return "invalid class";
    case Errc::kNotLeaf: return "not a leaf";
    case Errc::kHasChildren: return "has children";
    case Errc::kHasBacklog: return "has backlog";
    case Errc::kUnsupportedCurve: return "unsupported curve";
    case Errc::kMissingCurve: return "missing curve";
    case Errc::kInvariantViolation: return "invariant violation";
    case Errc::kAdmissionRejected: return "admission rejected";
    case Errc::kTxnInvalid: return "invalid transaction";
    case Errc::kBadCheckpoint: return "bad checkpoint";
    case Errc::kBadJournal: return "bad journal";
    case Errc::kBadTrace: return "bad trace";
  }
  return "unknown error";
}

class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}

  Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

// Always-on precondition check (assert's replacement on public APIs).
inline void ensure(bool cond, Errc code, const std::string& what) {
  if (!cond) throw Error(code, what);
}

// Counters for data-path events that were absorbed instead of thrown.
// Exposed by every scheduler that hardens its enqueue/dequeue path.
struct DataPathCounters {
  std::uint64_t bad_class = 0;    // unknown / deleted / interior class id
  std::uint64_t zero_len = 0;     // zero-length packet dropped
  std::uint64_t oversized = 0;    // packet above the configured maximum
  std::uint64_t clock_regressions = 0;  // `now` moved backwards; clamped

  std::uint64_t rejected_packets() const noexcept {
    return bad_class + zero_len + oversized;
  }
};

}  // namespace hfsc
