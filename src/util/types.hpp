// Fundamental fixed-point quantities used throughout libhfsc.
//
// The paper's quantities are amounts of service (bytes) and time.  We use
// 64-bit unsigned nanoseconds for wall-clock and virtual time, 64-bit
// unsigned bytes for work, and bytes-per-second for curve slopes.  All
// slope*time products are computed through 128-bit intermediates so no
// scaling shift (cf. the kernel implementation's SM_SHIFT) is needed.
//
// Rounding convention: forward evaluation y = m*t rounds down; inverse
// evaluation t = y/m rounds up, so that the inverse returns the smallest t
// with m*t >= y — exactly the definition of the curve inverse in Section II
// of the paper ("we define S^-1(y) to be the smallest value x such that
// S(x) = y").
#pragma once

#include <cstdint>
#include <limits>

namespace hfsc {

using TimeNs = std::uint64_t;   // wall-clock or virtual time, nanoseconds
using Bytes = std::uint64_t;    // amount of service
using RateBps = std::uint64_t;  // slope: bytes per second

inline constexpr TimeNs kNsPerSec = 1'000'000'000ULL;
inline constexpr TimeNs kTimeInfinity = std::numeric_limits<TimeNs>::max();
inline constexpr Bytes kBytesInfinity = std::numeric_limits<Bytes>::max();

// Saturating (hi*lo)/div with 128-bit intermediate, rounding down.
constexpr std::uint64_t muldiv_floor(std::uint64_t a, std::uint64_t b,
                                     std::uint64_t div) noexcept {
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  const unsigned __int128 q = p / div;
  if (q > std::numeric_limits<std::uint64_t>::max()) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(q);
}

// Saturating (hi*lo)/div with 128-bit intermediate, rounding up.
constexpr std::uint64_t muldiv_ceil(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t div) noexcept {
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  const unsigned __int128 q = (p + div - 1) / div;
  if (q > std::numeric_limits<std::uint64_t>::max()) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(q);
}

// Service delivered by a segment of slope m (bytes/s) over dt nanoseconds.
constexpr Bytes seg_x2y(TimeNs dt, RateBps m) noexcept {
  return muldiv_floor(dt, m, kNsPerSec);
}

// Smallest dt (ns) such that seg_x2y(dt, m) >= dy.  Infinite if m == 0 and
// dy > 0.
constexpr TimeNs seg_y2x(Bytes dy, RateBps m) noexcept {
  if (dy == 0) return 0;
  if (m == 0) return kTimeInfinity;
  // smallest dt with floor(dt*m/1e9) >= dy  <=>  dt*m >= dy*1e9
  return muldiv_ceil(dy, kNsPerSec, m);
}

// Saturating addition helpers (curves extend to "infinity" on purpose).
constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

constexpr std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}

// Convenience unit constructors.
constexpr RateBps kbps(std::uint64_t v) noexcept { return v * 1000 / 8; }
constexpr RateBps mbps(std::uint64_t v) noexcept { return v * 1'000'000 / 8; }
constexpr RateBps gbps(std::uint64_t v) noexcept {
  return v * 1'000'000'000 / 8;
}
constexpr TimeNs usec(std::uint64_t v) noexcept { return v * 1'000; }
constexpr TimeNs msec(std::uint64_t v) noexcept { return v * 1'000'000; }
constexpr TimeNs sec(std::uint64_t v) noexcept { return v * kNsPerSec; }

// Transmission time of `len` bytes on a link of `rate` bytes/s, rounded up
// (a packet does not finish until its last bit is sent; Section VI uses
// last-bit semantics for both arrival and departure).
constexpr TimeNs tx_time(Bytes len, RateBps rate) noexcept {
  return seg_y2x(len, rate);
}

}  // namespace hfsc
