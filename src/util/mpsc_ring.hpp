// Bounded lock-free multi-producer / single-consumer ring
// (docs/ROBUSTNESS.md Section 12).
//
// This is the enqueue mailbox between producer threads and a shard
// worker (runtime/shard.hpp): any number of producers try_push()
// concurrently; exactly one consumer thread try_pop()s.  The ring is a
// Vyukov-style bounded queue — a power-of-two array of cells, each
// carrying an atomic sequence number that encodes whose turn the cell
// is on.  Producers claim a slot with one CAS on the tail counter and
// publish the payload with a release store of the cell sequence; the
// consumer observes that store with an acquire load, so the payload
// hand-off needs no locks and no per-element allocation.
//
// Backpressure is explicit: try_push() returns false when the ring is
// full and the caller decides (the sharded runtime counts the packet as
// `ring_rejected` — the conservation identity's `rejected` term — or
// diverts it to the spill buffer while the shard is quarantined).  A
// full ring never blocks a producer and never overwrites unconsumed
// entries.
//
// Single-consumer restriction: only one thread may call try_pop() /
// drain() at a time.  The shard worker owns that role while running;
// the supervisor takes it over only after joining the worker thread
// (the join gives the required happens-before edge).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

namespace hfsc {

template <typename T>
class MpscRing {
 public:
  // Capacity is rounded up to the next power of two (minimum 2).
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  // Multi-producer.  False = ring full (backpressure); the element is
  // not consumed from the caller in that case.
  bool try_push(const T& v) {
    Cell* cell = nullptr;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed element
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = v;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Single consumer only.
  std::optional<T> try_pop() {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell* cell = &cells_[pos & mask_];
    const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (dif < 0) return std::nullopt;  // empty (or producer mid-publish)
    std::optional<T> out{std::move(cell->value)};
    head_.store(pos + 1, std::memory_order_relaxed);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  // Single consumer only: the head element without consuming it, or
  // null when the ring is empty.  The pointer stays valid until the
  // consumer's own next try_pop()/drain() (producers never touch a
  // published, unconsumed cell).  The shard worker uses this to merge
  // ring arrivals with transmission completions in virtual-timestamp
  // order.
  const T* try_peek() const {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    const Cell* cell = &cells_[pos & mask_];
    const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (dif < 0) return nullptr;  // empty (or producer mid-publish)
    return &cell->value;
  }

  // Consumer-side bulk drain into `sink(T&&)`; returns the count.
  template <typename Sink>
  std::size_t drain(Sink&& sink) {
    std::size_t n = 0;
    while (auto v = try_pop()) {
      sink(std::move(*v));
      ++n;
    }
    return n;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // Racy by nature (producers move tail concurrently); exact only when
  // every producer and the consumer are quiescent.
  std::size_t size_approx() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  // Head and tail sit on separate cache lines so producers CASing the
  // tail do not bounce the consumer's head line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
};

}  // namespace hfsc
