// Small deterministic PRNG (splitmix64 seeding + xoshiro256**) with the
// distributions the traffic sources need.  Deterministic across platforms so
// tests and experiment output are reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace hfsc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // splitmix64 to expand the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97f4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo + 1;
    return span == 0 ? next_u64() : lo + next_u64() % span;
  }

  // Exponentially distributed with the given mean (> 0).
  double exponential(double mean) noexcept {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Bernoulli trial.
  bool chance(double p) noexcept { return next_double() < p; }

  // Pareto with shape alpha (> 0) and scale xm (> 0); heavy-tailed frame
  // and flow sizes.
  double pareto(double alpha, double xm) noexcept {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hfsc
