// Measurement helpers: running scalar statistics, exact-percentile samples,
// and time-windowed throughput series.  These implement the "measurement"
// substrate (S12 in DESIGN.md) used to regenerate the paper's figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace hfsc {

// Streaming mean/min/max/variance (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample; supports exact quantiles.  Fine at simulation scale
// (millions of packets).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double max() const noexcept;
  double min() const noexcept;
  // q in [0, 1]; nearest-rank on the sorted samples.  Returns 0 when empty.
  double quantile(double q) const;

  // Raw samples in insertion order (histogram builders, set merging).
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Accumulates bytes into fixed-width wall-clock windows; yields a
// throughput-versus-time series (the paper's link-sharing plots).
class WindowedThroughput {
 public:
  explicit WindowedThroughput(TimeNs window) : window_(window) {}

  void add(TimeNs t, Bytes len);

  TimeNs window() const noexcept { return window_; }
  std::size_t num_windows() const noexcept { return bytes_.size(); }
  Bytes bytes_in_window(std::size_t i) const { return bytes_.at(i); }

  // Average rate (bytes/s) over window i.
  double rate_bps(std::size_t i) const;

  // Average rate over wall-clock interval [t0, t1) computed from the
  // windows it covers (partial windows weighted by overlap).
  double rate_over(TimeNs t0, TimeNs t1) const;

 private:
  TimeNs window_;
  std::vector<Bytes> bytes_;
};

// Fixed-format table printer for the experiment binaries: pads columns and
// keeps the output grep-friendly.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hfsc
