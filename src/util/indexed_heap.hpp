// A handle-based binary min-heap.
//
// Schedulers need priority queues whose elements' keys change while queued
// (a class's deadline/eligible/virtual time is recomputed whenever its head
// packet changes) and that support removal from the middle (a class going
// passive).  IndexedHeap stores a dense array of (key, id) pairs plus a
// side table mapping id -> heap slot, giving O(log n) push / pop / erase /
// update and O(1) top and containment tests.
//
// Ids are small non-negative integers (class indices).  Ties are broken by
// id so iteration order is deterministic across runs.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hfsc {

template <typename Key>
class IndexedHeap {
 public:
  using Id = std::uint32_t;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  bool contains(Id id) const noexcept {
    return id < slot_.size() && slot_[id] != kNoSlot;
  }

  // Key of the minimum element; heap must be non-empty.
  const Key& top_key() const noexcept {
    assert(!heap_.empty());
    return heap_.front().key;
  }

  Id top_id() const noexcept {
    assert(!heap_.empty());
    return heap_.front().id;
  }

  const Key& key_of(Id id) const noexcept {
    assert(contains(id));
    return heap_[slot_[id]].key;
  }

  // Inserts id with the given key.  id must not already be present.
  void push(Id id, Key key) {
    assert(!contains(id));
    if (id >= slot_.size()) slot_.resize(id + 1, kNoSlot);
    heap_.push_back(Node{std::move(key), id});
    slot_[id] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  // Removes and returns the id with the smallest key.
  Id pop() {
    assert(!heap_.empty());
    const Id id = heap_.front().id;
    erase_slot(0);
    return id;
  }

  // Removes id from the heap.  id must be present.
  void erase(Id id) {
    assert(contains(id));
    erase_slot(slot_[id]);
  }

  // Changes the key of a present element (up or down).
  void update(Id id, Key key) {
    assert(contains(id));
    const std::size_t s = slot_[id];
    const bool went_down = less(Node{key, id}, heap_[s]);
    heap_[s].key = std::move(key);
    if (went_down) {
      sift_up(s);
    } else {
      sift_down(s);
    }
  }

  // push if absent, update otherwise.
  void push_or_update(Id id, Key key) {
    if (contains(id)) {
      update(id, std::move(key));
    } else {
      push(id, std::move(key));
    }
  }

  void clear() noexcept {
    heap_.clear();
    slot_.assign(slot_.size(), kNoSlot);
  }

 private:
  struct Node {
    Key key;
    Id id;
  };

  static bool less(const Node& a, const Node& b) noexcept {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void erase_slot(std::size_t s) {
    slot_[heap_[s].id] = kNoSlot;
    if (s + 1 != heap_.size()) {
      heap_[s] = std::move(heap_.back());
      slot_[heap_[s].id] = s;
      heap_.pop_back();
      // The moved-in node may need to travel either way.
      sift_up(s);
      sift_down(s);
    } else {
      heap_.pop_back();
    }
  }

  void sift_up(std::size_t s) {
    while (s > 0) {
      const std::size_t parent = (s - 1) / 2;
      if (!less(heap_[s], heap_[parent])) break;
      swap_slots(s, parent);
      s = parent;
    }
  }

  void sift_down(std::size_t s) {
    const std::size_t n = heap_.size();
    if (s >= n) return;
    for (;;) {
      const std::size_t l = 2 * s + 1;
      const std::size_t r = 2 * s + 2;
#if defined(HFSC_HEAP_PREFETCH) && (defined(__GNUC__) || defined(__clang__))
      // Pull the grandchildren (the next iteration's candidates) toward
      // the cache while this level's comparisons retire.  Off by default:
      // at the hierarchy sizes the benchmarks track (<= 1000 slots the
      // heap stays L1/L2-resident) the extra per-level branches and
      // prefetch uops measured a 12-15% throughput LOSS on
      // wide1000/dual_heap (docs/BENCH_NOTES.md); the flag exists for
      // hierarchies large enough that the walk really is one dependent
      // cache miss per level.
      if (4 * s + 3 < n) __builtin_prefetch(&heap_[4 * s + 3]);
      if (4 * s + 5 < n) __builtin_prefetch(&heap_[4 * s + 5]);
#endif
      std::size_t smallest = s;
      if (l < n && less(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && less(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == s) break;
      swap_slots(s, smallest);
      s = smallest;
    }
  }

  void swap_slots(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    slot_[heap_[a].id] = a;
    slot_[heap_[b].id] = b;
  }

  std::vector<Node> heap_;
  std::vector<std::size_t> slot_;
};

}  // namespace hfsc
