#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace hfsc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

void WindowedThroughput::add(TimeNs t, Bytes len) {
  const std::size_t idx = static_cast<std::size_t>(t / window_);
  if (idx >= bytes_.size()) bytes_.resize(idx + 1, 0);
  bytes_[idx] += len;
}

double WindowedThroughput::rate_bps(std::size_t i) const {
  return static_cast<double>(bytes_.at(i)) * static_cast<double>(kNsPerSec) /
         static_cast<double>(window_);
}

double WindowedThroughput::rate_over(TimeNs t0, TimeNs t1) const {
  if (t1 <= t0) return 0.0;
  double total = 0.0;
  const std::size_t first = static_cast<std::size_t>(t0 / window_);
  const std::size_t last = static_cast<std::size_t>((t1 - 1) / window_);
  for (std::size_t i = first; i <= last && i < bytes_.size(); ++i) {
    const TimeNs w0 = static_cast<TimeNs>(i) * window_;
    const TimeNs w1 = w0 + window_;
    const TimeNs o0 = std::max(t0, w0);
    const TimeNs o1 = std::min(t1, w1);
    const double frac = static_cast<double>(o1 - o0) /
                        static_cast<double>(window_);
    total += static_cast<double>(bytes_[i]) * frac;
  }
  return total * static_cast<double>(kNsPerSec) /
         static_cast<double>(t1 - t0);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < width.size()) {
        out << std::string(width[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace hfsc
