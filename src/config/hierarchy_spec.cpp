#include "config/hierarchy_spec.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/errors.hpp"

namespace hfsc {

std::string_view to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kHfsc: return "hfsc";
    case SchedulerKind::kHpfq: return "hpfq";
    case SchedulerKind::kCbq: return "cbq";
    case SchedulerKind::kDrr: return "drr";
    case SchedulerKind::kSced: return "sced";
    case SchedulerKind::kVirtualClock: return "vclock";
    case SchedulerKind::kFifo: return "fifo";
  }
  return "?";
}

std::optional<SchedulerKind> parse_scheduler_kind(std::string_view token) {
  for (SchedulerKind k : all_scheduler_kinds()) {
    if (token == to_string(k)) return k;
  }
  if (token == "virtualclock") return SchedulerKind::kVirtualClock;
  return std::nullopt;
}

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kAll = {
      SchedulerKind::kHfsc, SchedulerKind::kHpfq,
      SchedulerKind::kCbq,  SchedulerKind::kDrr,
      SchedulerKind::kSced, SchedulerKind::kVirtualClock,
      SchedulerKind::kFifo,
  };
  return kAll;
}

namespace {

using ClassSpec = HierarchySpec::ClassSpec;
using IdMap = HierarchySpec::IdMap;
using CompileOptions = HierarchySpec::CompileOptions;

void check_class(const ClassSpec& c, const std::set<std::string>& declared) {
  ensure(!c.name.empty(), Errc::kInvalidArgument, "class with empty name");
  ensure(c.name != "root", Errc::kInvalidArgument,
         "'root' is reserved for the hierarchy root");
  ensure(!declared.count(c.name), Errc::kInvalidArgument,
         "duplicate class '" + c.name + "'");
  if (!ClassSpec::is_top_level(c.parent)) {
    ensure(declared.count(c.parent), Errc::kInvalidClass,
           "class '" + c.name + "': parent '" + c.parent +
               "' not declared before its child");
  }
  for (const ServiceCurve* sc : {&c.rt, &c.ls, &c.ul}) {
    ensure(sc->is_zero() || sc->is_supported(), Errc::kUnsupportedCurve,
           "class '" + c.name + "': curve shape outside the two-piece "
           "algebra (must be concave, or convex with m1 = 0)");
  }
  ensure(!c.rt.is_zero() || !c.ls.is_zero() || c.rate != 0,
         Errc::kMissingCurve,
         "class '" + c.name + "': needs an rt or ls curve or an explicit rate");
}

// Records a lossy mapping (default), or rejects it in strict mode.
void lose(std::vector<std::string>* notes, bool strict, Errc errc,
          const std::string& msg) {
  if (strict) throw Error(errc, msg);
  if (notes) notes->push_back(msg);
}

// The losses every rate-based family shares: curves collapsed to one
// long-term rate, queue limits and priorities dropped.  Returns the rate.
RateBps rate_based_losses(const ClassSpec& c, std::string_view family,
                          std::vector<std::string>* notes, bool strict) {
  const RateBps r = c.share_rate();
  ensure(r > 0, Errc::kMissingCurve,
         "class '" + c.name + "': no long-term rate (m2 == 0) to map onto " +
             std::string(family));
  if (c.rate == 0) {
    const ServiceCurve& src = !c.ls.is_zero() ? c.ls : c.rt;
    if (!src.is_linear()) {
      lose(notes, strict, Errc::kUnsupportedCurve,
           "class '" + c.name + "': non-linear " +
               (!c.ls.is_zero() ? "ls" : "rt") +
               " curve degraded to its long-term rate under " +
               std::string(family));
    }
  }
  if (c.qlimit != 0) {
    lose(notes, strict, Errc::kInvalidArgument,
         "class '" + c.name + "': queue limit dropped (" +
             std::string(family) + " queues are unlimited)");
  }
  if (c.priority != 0) {
    lose(notes, strict, Errc::kInvalidArgument,
         "class '" + c.name + "': priority dropped (" + std::string(family) +
             " has no priority levels)");
  }
  return r;
}

void note_hfsc_only_options(const CompileOptions& opts, std::string_view family,
                            std::vector<std::string>* notes) {
  // Run options, not spec losses: never a strict-mode error.
  if (notes == nullptr) return;
  if (opts.audit_every != 0) {
    notes->push_back(std::string("invariant audit ignored (") +
                     std::string(family) + " has no auditor)");
  }
  if (opts.admission) {
    notes->push_back(std::string("admission control ignored (") +
                     std::string(family) + " has no admission check)");
  }
}

// Wraps a control-path failure with the class being compiled, matching the
// one-line "class 'video': admission rejected: …" contract the scenario
// engine has always had.
[[noreturn]] void rethrow_for(const std::string& name, const Error& e) {
  throw std::runtime_error("class '" + name + "': " + e.what());
}

}  // namespace

void HierarchySpec::add(ClassSpec c) {
  std::set<std::string> declared;
  for (const ClassSpec& prev : classes) declared.insert(prev.name);
  check_class(c, declared);
  classes.push_back(std::move(c));
}

void HierarchySpec::validate() const {
  std::set<std::string> declared;
  for (const ClassSpec& c : classes) {
    check_class(c, declared);
    declared.insert(c.name);
  }
}

bool HierarchySpec::is_leaf(const std::string& name) const {
  return std::none_of(classes.begin(), classes.end(),
                      [&](const ClassSpec& c) { return c.parent == name; });
}

std::unique_ptr<Hfsc> HierarchySpec::build_hfsc(
    RateBps link_rate, IdMap* ids, std::vector<std::string>* notes,
    const CompileOptions& opts) const {
  validate();
  (void)notes;  // H-FSC expresses the full spec — nothing to record.
  auto sched = std::make_unique<Hfsc>(link_rate);
  if (opts.audit_every != 0) sched->enable_self_check(opts.audit_every);
  if (opts.admission) sched->enable_admission_control();
  IdMap local;
  for (const ClassSpec& c : classes) {
    const ClassId parent =
        ClassSpec::is_top_level(c.parent) ? kRootClass : local.at(c.parent);
    ClassId id;
    try {
      id = sched->add_class(parent, ClassConfig{c.rt, c.ls, c.ul});
    } catch (const Error& e) {
      rethrow_for(c.name, e);
    }
    if (c.qlimit != 0) sched->set_queue_limit(id, c.qlimit);
    local[c.name] = id;
  }
  if (ids) *ids = std::move(local);
  return sched;
}

std::unique_ptr<HPfq> HierarchySpec::build_hpfq(
    RateBps link_rate, IdMap* ids, std::vector<std::string>* notes,
    const CompileOptions& opts) const {
  validate();
  note_hfsc_only_options(opts, "H-PFQ", notes);
  auto sched = std::make_unique<HPfq>(link_rate);
  IdMap local;
  for (const ClassSpec& c : classes) {
    const RateBps r = rate_based_losses(c, "H-PFQ", notes, opts.strict);
    if (!c.ul.is_zero()) {
      lose(notes, opts.strict, Errc::kInvalidArgument,
           "class '" + c.name +
               "': ul curve dropped (H-PFQ is work-conserving)");
    }
    const ClassId parent =
        ClassSpec::is_top_level(c.parent) ? kRootClass : local.at(c.parent);
    try {
      local[c.name] = sched->add_class(parent, r);
    } catch (const Error& e) {
      rethrow_for(c.name, e);
    }
  }
  if (ids) *ids = std::move(local);
  return sched;
}

std::unique_ptr<Cbq> HierarchySpec::build_cbq(
    RateBps link_rate, IdMap* ids, std::vector<std::string>* notes,
    const CompileOptions& opts) const {
  validate();
  note_hfsc_only_options(opts, "CBQ", notes);
  auto sched = std::make_unique<Cbq>(link_rate);
  IdMap local;
  for (const ClassSpec& c : classes) {
    RateBps r = rate_based_losses(c, "CBQ", notes, opts.strict);
    bool borrow = true;
    if (!c.ul.is_zero()) {
      // CBQ's only cap is the estimator at the allocated rate: clamp the
      // allocation to the upper limit and forbid borrowing past it.
      borrow = false;
      r = std::min(r, c.ul.rate());
      ensure(r > 0, Errc::kMissingCurve,
             "class '" + c.name + "': ul long-term rate is zero under CBQ");
      lose(notes, opts.strict, Errc::kUnsupportedCurve,
           "class '" + c.name +
               "': ul curve became borrow=off with the allocation clamped "
               "to the ul rate under CBQ");
    }
    const ClassId parent =
        ClassSpec::is_top_level(c.parent) ? kRootClass : local.at(c.parent);
    try {
      local[c.name] = sched->add_class(parent, r, borrow);
    } catch (const Error& e) {
      rethrow_for(c.name, e);
    }
  }
  if (ids) *ids = std::move(local);
  return sched;
}

namespace {

// Flat families drop the interior of the tree; leaves attach directly to
// the server.  Returns the leaves in declaration order.
std::vector<const ClassSpec*> flatten(const HierarchySpec& spec,
                                      std::string_view family,
                                      std::vector<std::string>* notes,
                                      bool strict) {
  std::vector<const ClassSpec*> leaves;
  for (const ClassSpec& c : spec.classes) {
    if (spec.is_leaf(c.name)) {
      leaves.push_back(&c);
    } else {
      lose(notes, strict, Errc::kInvalidArgument,
           "class '" + c.name + "': interior class dropped (" +
               std::string(family) + " is flat)");
    }
  }
  return leaves;
}

}  // namespace

std::unique_ptr<Drr> HierarchySpec::build_drr(
    RateBps link_rate, IdMap* ids, std::vector<std::string>* notes,
    const CompileOptions& opts) const {
  validate();
  note_hfsc_only_options(opts, "DRR", notes);
  auto sched = std::make_unique<Drr>();
  IdMap local;
  for (const ClassSpec* c : flatten(*this, "DRR", notes, opts.strict)) {
    const RateBps r = rate_based_losses(*c, "DRR", notes, opts.strict);
    if (!c->ul.is_zero()) {
      lose(notes, opts.strict, Errc::kInvalidArgument,
           "class '" + c->name + "': ul curve dropped (DRR is "
           "work-conserving)");
    }
    // A round serves ~one MTU-sized quantum per unit of link share; 8
    // full-size packets at an even split, never below one byte so a tiny
    // class still progresses.
    const Bytes quantum = std::max<Bytes>(
        1, muldiv_floor(Bytes{12000} * static_cast<Bytes>(
                            std::max<std::size_t>(classes.size(), 1)),
                        r, link_rate));
    local[c->name] = sched->add_session(quantum);
  }
  if (ids) *ids = std::move(local);
  return sched;
}

std::unique_ptr<Sced> HierarchySpec::build_sced(
    RateBps link_rate, IdMap* ids, std::vector<std::string>* notes,
    const CompileOptions& opts) const {
  validate();
  note_hfsc_only_options(opts, "SCED", notes);
  (void)link_rate;  // SCED has no server curve parameter here.
  auto sched = std::make_unique<Sced>();
  IdMap local;
  for (const ClassSpec* c : flatten(*this, "SCED", notes, opts.strict)) {
    // SCED keeps the full (possibly non-linear) guarantee: rt wins, then
    // ls, then the explicit rate.
    ServiceCurve sc = !c->rt.is_zero()
                          ? c->rt
                          : (!c->ls.is_zero() ? c->ls
                                              : ServiceCurve::linear(c->rate));
    if (!c->ul.is_zero()) {
      lose(notes, opts.strict, Errc::kInvalidArgument,
           "class '" + c->name + "': ul curve dropped (SCED is "
           "work-conserving)");
    }
    if (c->qlimit != 0) {
      lose(notes, opts.strict, Errc::kInvalidArgument,
           "class '" + c->name + "': queue limit dropped (SCED queues are "
           "unlimited)");
    }
    if (c->priority != 0) {
      lose(notes, opts.strict, Errc::kInvalidArgument,
           "class '" + c->name + "': priority dropped (SCED has no priority "
           "levels)");
    }
    local[c->name] = sched->add_session(sc);
  }
  if (ids) *ids = std::move(local);
  return sched;
}

std::unique_ptr<VirtualClock> HierarchySpec::build_vclock(
    RateBps link_rate, IdMap* ids, std::vector<std::string>* notes,
    const CompileOptions& opts) const {
  validate();
  note_hfsc_only_options(opts, "VirtualClock", notes);
  (void)link_rate;
  auto sched = std::make_unique<VirtualClock>();
  IdMap local;
  for (const ClassSpec* c : flatten(*this, "VirtualClock", notes,
                                    opts.strict)) {
    const RateBps r = rate_based_losses(*c, "VirtualClock", notes,
                                        opts.strict);
    if (!c->ul.is_zero()) {
      lose(notes, opts.strict, Errc::kInvalidArgument,
           "class '" + c->name + "': ul curve dropped (VirtualClock is "
           "work-conserving)");
    }
    local[c->name] = sched->add_session(r);
  }
  if (ids) *ids = std::move(local);
  return sched;
}

std::unique_ptr<Fifo> HierarchySpec::build_fifo(
    RateBps link_rate, IdMap* ids, std::vector<std::string>* notes,
    const CompileOptions& opts) const {
  validate();
  note_hfsc_only_options(opts, "FIFO", notes);
  (void)link_rate;
  lose(notes, opts.strict, Errc::kInvalidArgument,
       "all class guarantees collapsed into one shared FIFO queue");
  auto sched = std::make_unique<Fifo>();
  // FIFO ignores the class id on the wire, but synthetic ids keep
  // per-class arrival statistics meaningful downstream.
  IdMap local;
  ClassId next = 1;
  for (const ClassSpec& c : classes) {
    if (is_leaf(c.name)) local[c.name] = next++;
  }
  if (ids) *ids = std::move(local);
  return sched;
}

HierarchySpec::Compiled HierarchySpec::compile(
    SchedulerKind kind, RateBps link_rate, const CompileOptions& opts) const {
  Compiled out;
  switch (kind) {
    case SchedulerKind::kHfsc: {
      auto s = build_hfsc(link_rate, &out.ids, &out.notes, opts);
      out.hfsc = s.get();
      out.sched = std::move(s);
      break;
    }
    case SchedulerKind::kHpfq:
      out.sched = build_hpfq(link_rate, &out.ids, &out.notes, opts);
      break;
    case SchedulerKind::kCbq:
      out.sched = build_cbq(link_rate, &out.ids, &out.notes, opts);
      break;
    case SchedulerKind::kDrr:
      out.sched = build_drr(link_rate, &out.ids, &out.notes, opts);
      break;
    case SchedulerKind::kSced:
      out.sched = build_sced(link_rate, &out.ids, &out.notes, opts);
      break;
    case SchedulerKind::kVirtualClock:
      out.sched = build_vclock(link_rate, &out.ids, &out.notes, opts);
      break;
    case SchedulerKind::kFifo:
      out.sched = build_fifo(link_rate, &out.ids, &out.notes, opts);
      break;
  }
  return out;
}

}  // namespace hfsc
