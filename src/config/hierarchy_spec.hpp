// Scheduler-agnostic hierarchy description and per-family compilers.
//
// The paper's evaluation is comparative — H-FSC against H-PFQ, CBQ and
// the flat baselines — but every family in this repository historically
// exposed a different construction API (three service curves for Hfsc, a
// single rate for HPfq, rate+borrow for Cbq, quanta for Drr, …).
// HierarchySpec is the one description they all compile from: named
// classes with a parent, rt/ls/ul service curves, an optional explicit
// rate, a priority and a queue limit.  One spec, compiled per family,
// yields schedulers that are *the same experiment* to the extent the
// family can express it.
//
// Mapping rules (full matrix in docs/SCHEDULERS.md).  Compilation is
// deliberately lossy where a family is less expressive, and every loss is
// either recorded as a human-readable note (default) or rejected with a
// typed Error (CompileOptions::strict):
//
//   * H-FSC  — exact: rt/ls/ul curves, queue limits.
//   * H-PFQ  — one guaranteed rate per class: the ls curve's long-term
//     rate (rt's if no ls).  Non-linear curves degrade to that rate;
//     upper limits and queue limits are dropped (work-conserving,
//     unlimited queues).
//   * CBQ    — like H-PFQ, plus: a class with an upper-limit curve
//     compiles with borrowing disabled and its allocation clamped to
//     min(share, ul rate) — CBQ's only cap is the estimator at the
//     allocated rate.
//   * DRR / SCED / VirtualClock / FIFO — flat: interior classes are
//     dropped and leaves attach directly to the server.  SCED keeps the
//     full (possibly non-linear) rt-else-ls curve; DRR gets a quantum
//     proportional to the class rate; VirtualClock the rate itself; FIFO
//     collapses everything into the shared queue (ids are still assigned
//     so per-class statistics survive).
//
// A class whose effective rate is zero where a rate is required (e.g. a
// pure-burst rt curve with m2 = 0 under H-PFQ) is always a typed error —
// there is no meaningful degradation.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <optional>
#include <vector>

#include "core/hfsc.hpp"
#include "curve/service_curve.hpp"
#include "sched/cbq.hpp"
#include "sched/drr.hpp"
#include "sched/fifo.hpp"
#include "sched/hpfq.hpp"
#include "sched/sced.hpp"
#include "sched/scheduler.hpp"
#include "sched/virtual_clock.hpp"
#include "util/types.hpp"

namespace hfsc {

// The families HierarchySpec can target (scenario `scheduler <kind>`
// directive, hfsc_sim --scheduler=/--compare=).
enum class SchedulerKind {
  kHfsc,
  kHpfq,
  kCbq,
  kDrr,
  kSced,
  kVirtualClock,
  kFifo,
};

// Canonical lower-case token ("hfsc", "hpfq", "cbq", "drr", "sced",
// "vclock", "fifo") — the spelling the scenario language uses.
std::string_view to_string(SchedulerKind kind) noexcept;

// Inverse of to_string (also accepts "virtualclock"); nullopt on an
// unknown token.
std::optional<SchedulerKind> parse_scheduler_kind(std::string_view token);

// Every kind, in the canonical comparison order.
const std::vector<SchedulerKind>& all_scheduler_kinds();

struct HierarchyCompileOptions {
  // Reject every lossy mapping with a typed Error instead of recording
  // a note: Error{kUnsupportedCurve} for curve degradations,
  // Error{kInvalidArgument} for dropped features (ul, qlimit,
  // priority, flattened interior classes).
  bool strict = false;
  // H-FSC-only knobs, applied before any class is added so the
  // compiled scheduler is call-for-call identical to one configured by
  // hand; other families record a note when they are set.
  std::size_t audit_every = 0;  // enable_self_check(N)
  bool admission = false;       // enable_admission_control()
};

struct HierarchySpec {
  using CompileOptions = HierarchyCompileOptions;
  struct ClassSpec {
    std::string name;
    std::string parent;  // "" or "root" = top level
    ServiceCurve rt{};   // leaf guarantee (families that can express it)
    ServiceCurve ls{};   // link-sharing share
    ServiceCurve ul{};   // upper limit (families that can express it)
    // Explicit share for the rate-based families (H-PFQ/CBQ/DRR/
    // VirtualClock); 0 derives the share from ls (falling back to rt).
    RateBps rate = 0;
    // Reserved for priority-aware families; every current compiler
    // records a note when it is non-zero.
    int priority = 0;
    std::size_t qlimit = 0;  // max queued packets; 0 = unlimited
    // Token-bucket arrival envelope A(t) = env_burst + env_rate * t the
    // class's traffic is promised to conform to (scenario `envelope`
    // directive).  Not consumed by any compiler — the static analyzer
    // (analysis/analyzer.hpp) derives Theorem 2 delay bounds from it.
    // Both zero = no envelope declared.
    Bytes env_burst = 0;
    RateBps env_rate = 0;
    // Explicit shard pin for the sharded runtime (scenario `shard`
    // class attribute).  Only legal on a top-level class — the
    // top-level subtree is the partition unit — and must be < the
    // runtime's shard count; -1 = assign by name hash.  Ignored by
    // every single-instance compiler.
    int shard = -1;

    static bool is_top_level(const std::string& parent) {
      return parent.empty() || parent == "root";
    }
    // The single guaranteed rate a rate-based family sees (mapping rule
    // above): explicit `rate`, else ls long-term rate, else rt's.
    RateBps share_rate() const noexcept {
      if (rate != 0) return rate;
      if (!ls.is_zero()) return ls.rate();
      return rt.rate();
    }
  };

  std::vector<ClassSpec> classes;

  // Appends a class after validating it against what is already declared:
  // Error{kInvalidArgument} on a duplicate or reserved ("root") name,
  // Error{kInvalidClass} on a parent not declared before its child,
  // Error{kMissingCurve} when neither rt nor ls nor an explicit rate is
  // given, Error{kUnsupportedCurve} on a curve shape outside the
  // two-piece algebra.
  void add(ClassSpec c);

  // Whole-spec validation (add() incrementally enforces the same rules;
  // this re-checks a directly aggregate-initialized `classes` vector).
  void validate() const;

  // True when no other class declares `name` as its parent.
  bool is_leaf(const std::string& name) const;

  using IdMap = std::map<std::string, ClassId>;

  struct Compiled {
    std::unique_ptr<Scheduler> sched;
    // Non-owning view of sched when it is an Hfsc (checkpointing, audit);
    // null for every other family.
    Hfsc* hfsc = nullptr;
    // Class name -> id under the compiled scheduler.  Flat families map
    // leaves only; interior names are absent.
    IdMap ids;
    // One line per lossy mapping, in declaration order.
    std::vector<std::string> notes;
  };

  // Compiles the spec for one family.  Throws hfsc::Error on spec-level
  // misuse or strict-mode losses, and std::runtime_error wrapping the
  // offending class name ("class 'x': …") when the underlying scheduler
  // rejects a mutation (e.g. admission control).
  Compiled compile(SchedulerKind kind, RateBps link_rate,
                   const CompileOptions& opts = {}) const;

  // Typed per-family compilers (compile() dispatches to these; exposed so
  // tests and tools can keep the concrete type — e.g. state_digest on the
  // compiled Hfsc).  `ids`/`notes` may be null.
  std::unique_ptr<Hfsc> build_hfsc(RateBps link_rate, IdMap* ids = nullptr,
                                   std::vector<std::string>* notes = nullptr,
                                   const CompileOptions& opts = {}) const;
  std::unique_ptr<HPfq> build_hpfq(RateBps link_rate, IdMap* ids = nullptr,
                                   std::vector<std::string>* notes = nullptr,
                                   const CompileOptions& opts = {}) const;
  std::unique_ptr<Cbq> build_cbq(RateBps link_rate, IdMap* ids = nullptr,
                                 std::vector<std::string>* notes = nullptr,
                                 const CompileOptions& opts = {}) const;
  std::unique_ptr<Drr> build_drr(RateBps link_rate, IdMap* ids = nullptr,
                                 std::vector<std::string>* notes = nullptr,
                                 const CompileOptions& opts = {}) const;
  std::unique_ptr<Sced> build_sced(RateBps link_rate, IdMap* ids = nullptr,
                                   std::vector<std::string>* notes = nullptr,
                                   const CompileOptions& opts = {}) const;
  std::unique_ptr<VirtualClock> build_vclock(
      RateBps link_rate, IdMap* ids = nullptr,
      std::vector<std::string>* notes = nullptr,
      const CompileOptions& opts = {}) const;
  std::unique_ptr<Fifo> build_fifo(RateBps link_rate, IdMap* ids = nullptr,
                                   std::vector<std::string>* notes = nullptr,
                                   const CompileOptions& opts = {}) const;
};

}  // namespace hfsc
