// Example: end-to-end guarantees across a multi-hop path.
//
// Service curves compose across hops (the network-calculus foundation the
// paper builds on): if every switch on a path runs H-FSC and grants a
// session the same curve, the end-to-end delay is bounded by roughly the
// sum of the per-hop bounds — regardless of cross traffic joining at each
// hop.  This example pushes a voice session through a 4-hop tandem with
// fresh greedy cross traffic at every hop and prints the end-to-end delay
// under H-FSC versus FIFO.
#include <cstdio>

#include "core/hfsc.hpp"
#include "sched/fifo.hpp"
#include "sim/tandem.hpp"
#include "sim/sources.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLinkRate = mbps(10);
constexpr std::size_t kHops = 4;
constexpr TimeNs kEnd = sec(5);
constexpr ClassId kVoice = 1;

struct Result {
  double mean_ms, max_ms;
  std::size_t delivered;
};

Result run(Tandem::SchedFactory factory) {
  EventQueue ev;
  Tandem tandem(ev, kHops, kLinkRate, std::move(factory));
  CbrSource voice(kVoice, kbps(64), 160, 0, kEnd);
  voice.install(ev, tandem.ingress());
  // Fresh greedy cross traffic enters at every hop (class 2).
  std::vector<std::unique_ptr<GreedySource>> cross;
  for (std::size_t h = 0; h < kHops; ++h) {
    cross.push_back(std::make_unique<GreedySource>(2, 1500, 6, 0, kEnd));
    cross.back()->install(ev, tandem.hop(h));
  }
  ev.run_until(kEnd + msec(500));
  return Result{tandem.e2e_mean_ms(kVoice), tandem.e2e_max_ms(kVoice),
                tandem.delivered(kVoice)};
}

}  // namespace

int main() {
  std::printf("4-hop tandem, 10 Mb/s links, greedy cross traffic at every "
              "hop; voice = 64 kb/s, per-hop target 5 ms\n\n");
  const Result fifo = run([] { return std::make_unique<Fifo>(); });
  const Result hfsc = run([] {
    auto s = std::make_unique<Hfsc>(kLinkRate);
    s->add_class(kRootClass,
                 ClassConfig::both(from_udr(160, msec(5), kbps(640))));
    s->add_class(kRootClass, ClassConfig::link_share_only(
                                 ServiceCurve::linear(mbps(9))));
    return s;
  });
  TablePrinter table({"sched", "voice_pkts", "e2e_mean_ms", "e2e_max_ms",
                      "per_hop_budget"});
  table.add_row({"FIFO", std::to_string(fifo.delivered),
                 TablePrinter::fmt(fifo.mean_ms), TablePrinter::fmt(fifo.max_ms),
                 "-"});
  table.add_row({"H-FSC", std::to_string(hfsc.delivered),
                 TablePrinter::fmt(hfsc.mean_ms), TablePrinter::fmt(hfsc.max_ms),
                 "4 x ~5 ms = 20 ms"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("H-FSC keeps the end-to-end maximum within the composed "
              "per-hop bounds; FIFO's delay is whatever the cross traffic "
              "dictates.\n");
  return 0;
}
