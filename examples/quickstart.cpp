// Quickstart: build a two-class H-FSC hierarchy, run synthetic traffic
// through a simulated 10 Mb/s link, and print what each class received.
//
//   $ example_quickstart
//
// The voice class gets a concave service curve — 200 bytes within 5 ms,
// then 64 kb/s — so its packets ride the real-time criterion and see
// millisecond delays even while the bulk class keeps the link saturated.
#include <cstdio>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace hfsc;

  const RateBps link = mbps(10);
  Hfsc sched(link);

  // Voice: guarantee 200 bytes within 5 ms and 64 kb/s thereafter
  // (concave curve => low delay decoupled from the small rate).
  const ClassId voice = sched.add_class(
      kRootClass, ClassConfig::both(from_udr(200, msec(5), kbps(64))));
  // Bulk: no delay requirement, 9 Mb/s share of the link.
  const ClassId bulk = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));

  Simulator sim(link, sched);
  sim.add<CbrSource>(voice, kbps(64), 160, 0, sec(10));
  sim.add<GreedySource>(bulk, 1500, 8, 0, sec(10));
  sim.run_all();

  const auto& t = sim.tracker();
  std::printf("class  packets  mean_delay_ms  max_delay_ms  rate_mbps\n");
  std::printf("voice  %7llu  %13.3f  %12.3f  %9.3f\n",
              static_cast<unsigned long long>(t.packets(voice)),
              t.mean_delay_ms(voice), t.max_delay_ms(voice),
              t.rate_mbps(voice, 0, sec(10)));
  std::printf("bulk   %7llu  %13.3f  %12.3f  %9.3f\n",
              static_cast<unsigned long long>(t.packets(bulk)),
              t.mean_delay_ms(bulk), t.max_delay_ms(bulk),
              t.rate_mbps(bulk, 0, sec(10)));
  return 0;
}
