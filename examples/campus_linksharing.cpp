// Example: the paper's Fig. 1 campus scenario, end to end.
//
// A 45 Mb/s access link shared by two organizations.  CMU (25 Mb/s) runs
// a distinguished-lecture broadcast (audio + video real-time sessions)
// next to aggregate audio/video/data traffic; U.Pitt (20 Mb/s) runs
// data and video aggregates.  The program prints each class's goodput in
// three phases and the real-time sessions' delays, demonstrating all
// three services of the paper at once: guaranteed real-time sessions,
// hierarchical link-sharing, and priority (decoupled delay/bandwidth).
#include <cstdio>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

int main() {
  const RateBps link = mbps(45);
  Hfsc sched(link);

  // --- the Fig. 1 hierarchy -------------------------------------------
  auto ls = [](RateBps r) {
    return ClassConfig::link_share_only(ServiceCurve::linear(r));
  };
  const ClassId cmu = sched.add_class(kRootClass, ls(mbps(25)));
  const ClassId pitt = sched.add_class(kRootClass, ls(mbps(20)));

  // CMU: distinguished lecture (real-time leaf sessions with decoupled
  // delay), plus traffic-type aggregates.
  const ClassId lect_audio = sched.add_class(
      cmu, ClassConfig::both(from_udr(160, msec(5), kbps(64))));
  const ClassId lect_video = sched.add_class(
      cmu, ClassConfig::both(from_udr(8000, msec(10), mbps(2))));
  const ClassId cmu_data = sched.add_class(cmu, ls(mbps(15)));
  const ClassId cmu_video = sched.add_class(cmu, ls(mbps(8)));

  // U.Pitt: aggregates only.
  const ClassId pitt_data = sched.add_class(pitt, ls(mbps(12)));
  const ClassId pitt_video = sched.add_class(pitt, ls(mbps(8)));

  // --- workload ----------------------------------------------------------
  const TimeNs end = sec(9);
  Simulator sim(link, sched);
  sim.add<CbrSource>(lect_audio, kbps(64), 160, 0, end);
  sim.add<VideoSource>(lect_video, 30.0, 3500, 8000, 1500, 0, end, 11);
  sim.add<GreedySource>(cmu_data, 1500, 8, 0, end);
  // CMU video aggregate pauses during (3 s, 6 s): its share should flow
  // to CMU data, not to U.Pitt.
  sim.add<OnOffSource>(cmu_video, mbps(12), 1400, msec(50), msec(50), 0,
                       sec(3), 5);
  sim.add<OnOffSource>(cmu_video, mbps(12), 1400, msec(50), msec(50),
                       sec(6), end, 6);
  sim.add<GreedySource>(pitt_data, 1500, 8, 0, end);
  sim.add<PoissonSource>(pitt_video, mbps(6), 1300, 0, end, 7);
  sim.run(end);

  // --- report --------------------------------------------------------
  const auto& t = sim.tracker();
  std::printf("campus link-sharing on a 45 Mb/s link (Fig. 1 hierarchy)\n\n");
  TablePrinter table({"class", "phase1_mbps", "phase2_mbps(video idle)",
                      "phase3_mbps"});
  struct RowDef {
    const char* name;
    ClassId cls;
  };
  for (const RowDef& r :
       {RowDef{"cmu/lect_audio", lect_audio}, RowDef{"cmu/lect_video", lect_video},
        RowDef{"cmu/data", cmu_data}, RowDef{"cmu/video_agg", cmu_video},
        RowDef{"pitt/data", pitt_data}, RowDef{"pitt/video_agg", pitt_video}}) {
    table.add_row({r.name, TablePrinter::fmt(t.rate_mbps(r.cls, 0, sec(3)), 2),
                   TablePrinter::fmt(t.rate_mbps(r.cls, sec(3), sec(6)), 2),
                   TablePrinter::fmt(t.rate_mbps(r.cls, sec(6), end), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("real-time sessions (decoupled delay at tiny bandwidth):\n");
  std::printf("  lecture audio: mean %.3f ms, max %.3f ms (target 5 ms)\n",
              t.mean_delay_ms(lect_audio), t.max_delay_ms(lect_audio));
  std::printf("  lecture video: mean %.3f ms, p99 %.3f ms (target 10 ms "
              "per frame)\n",
              t.mean_delay_ms(lect_video),
              t.delay_quantile_ms(lect_video, 0.99));
  return 0;
}
