// Example: an adaptive video application exploiting fairness.
//
// Section III-B's motivating story: a codec reserves only its minimum
// quality (1 Mb/s) and opportunistically raises quality whenever the link
// has spare capacity — safe under H-FSC because a class is never punished
// for having used excess service.  The program runs the codec against a
// bulk class that cycles on and off, and prints the video class's
// throughput (the quality level it can sustain) across phases, plus the
// crucial number: its worst 100 ms window right after bulk returns.
#include <algorithm>
#include <cstdio>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

int main() {
  const RateBps link = mbps(10);
  Hfsc sched(link);

  // Reservation: concave curve — 8 kB burst within 20 ms, then 1 Mb/s.
  const ClassId video = sched.add_class(
      kRootClass, ClassConfig::both(from_udr(8000, msec(20), mbps(1))));
  const ClassId bulk = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));

  const TimeNs end = sec(8);
  Simulator sim(link, sched);
  // The adaptive codec: always has more to send (quality scales with
  // whatever it gets).
  sim.add<GreedySource>(video, 1250, 6, 0, end);
  // Bulk: on during (0,2) and (4,6), off otherwise.
  sim.add<GreedySource>(bulk, 1500, 8, 0, sec(2));
  sim.add<GreedySource>(bulk, 1500, 8, sec(4), sec(6));
  sim.run(end);

  const auto& t = sim.tracker();
  std::printf("adaptive video with a 1 Mb/s reservation on a 10 Mb/s "
              "link\n\n");
  TablePrinter table({"phase", "bulk", "video_mbps", "video_quality"});
  auto quality = [](double mbps_val) {
    if (mbps_val > 6) return "1080p";
    if (mbps_val > 2.5) return "720p";
    if (mbps_val > 0.9) return "480p";
    return "STALLED";
  };
  struct Phase {
    const char* label;
    TimeNs a, b;
    const char* bulk;
  };
  for (const Phase& p : {Phase{"0-2s", msec(100), sec(2), "on"},
                         Phase{"2-4s", sec(2) + msec(100), sec(4), "off"},
                         Phase{"4-6s", sec(4) + msec(100), sec(6), "on"},
                         Phase{"6-8s", sec(6) + msec(100), end, "off"}}) {
    const double r = t.rate_mbps(video, p.a, p.b);
    table.add_row({p.label, p.bulk, TablePrinter::fmt(r, 2), quality(r)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double worst = 1e9;
  for (TimeNs w = sec(4); w + msec(100) <= sec(6); w += msec(100)) {
    worst = std::min(worst, t.rate_mbps(video, w, w + msec(100)));
  }
  std::printf("worst 100 ms video window after bulk returns at t=4s: "
              "%.2f Mb/s\n", worst);
  std::printf("=> using the idle link during 2-4s cost the codec nothing: "
              "it never dropped below its 1 Mb/s reservation (no "
              "punishment).  Under Virtual Clock or SCED the same codec "
              "would stall  — see bench/exp_nonpunishment.\n");
  return 0;
}
