// Example: a VoIP gateway uplink.
//
// 50 concurrent voice calls (64 kb/s each, 160 B packets => 20 ms
// packetization) share a 100 Mb/s uplink with heavy bulk transfer.  Each
// call is its own H-FSC leaf with a concave (u=160 B, d=10 ms) curve under
// a "voice" aggregate; bulk rides a link-share-only class.  An optional
// upper limit keeps bulk from bursting past 80 Mb/s even when voice is
// quiet (a common operator policy).
//
// Prints per-call delay percentiles across all calls, demonstrating
// per-session guarantees at scale.
#include <cstdio>
#include <vector>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

int main() {
  const RateBps link = mbps(100);
  constexpr int kCalls = 50;
  Hfsc sched(link);

  const ClassId voice = sched.add_class(
      kRootClass,
      ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  ClassConfig bulk_cfg =
      ClassConfig::link_share_only(ServiceCurve::linear(mbps(90)));
  bulk_cfg.ul = ServiceCurve::linear(mbps(80));  // operator cap
  const ClassId bulk = sched.add_class(kRootClass, bulk_cfg);

  std::vector<ClassId> calls;
  for (int i = 0; i < kCalls; ++i) {
    calls.push_back(sched.add_class(
        voice, ClassConfig::both(from_udr(160, msec(10), kbps(64)))));
  }

  const TimeNs end = sec(10);
  Simulator sim(link, sched);
  for (int i = 0; i < kCalls; ++i) {
    // Staggered call starts; talk-spurt on/off pattern.
    sim.add<OnOffSource>(calls[i], kbps(64), 160, msec(1200), msec(800),
                         msec(20) * static_cast<TimeNs>(i), end,
                         500 + static_cast<std::uint64_t>(i));
  }
  sim.add<GreedySource>(bulk, 1500, 12, 0, end);
  sim.run(end);

  const auto& t = sim.tracker();
  SampleSet mean_ms, max_ms;
  for (ClassId c : calls) {
    if (!t.has(c)) continue;
    mean_ms.add(t.mean_delay_ms(c));
    max_ms.add(t.max_delay_ms(c));
  }
  std::printf("VoIP gateway: %d calls + capped bulk on a 100 Mb/s link\n\n",
              kCalls);
  std::printf("per-call mean delay: median %.3f ms, worst %.3f ms\n",
              mean_ms.quantile(0.5), mean_ms.max());
  std::printf("per-call max  delay: median %.3f ms, worst %.3f ms "
              "(target 10 ms)\n",
              max_ms.quantile(0.5), max_ms.max());
  std::printf("bulk goodput: %.2f Mb/s (ls share 90, upper limit 80)\n",
              t.rate_mbps(bulk, sec(1), end));
  return 0;
}
