#!/usr/bin/env bash
# CI gate: build and test libhfsc in a plain Release configuration and an
# address+undefined sanitizer configuration.  Any test failure, sanitizer
# report (-fno-sanitize-recover=all aborts on the first finding), or build
# error fails the script.  ctest runs with a 120 s per-test timeout and
# stops at the first failing test, so a broken config fails fast instead
# of grinding through the rest of the suite.
#
#   $ tools/ci_check.sh            # both configs
#   $ tools/ci_check.sh release    # just the Release config
#   $ tools/ci_check.sh sanitize   # just the sanitizer config
#
# The randomized long-running suites carry the ctest label "fuzz"
# (tests/CMakeLists.txt); exclude them for a quick local gate with
#   $ CTEST_ARGS="-LE fuzz" tools/ci_check.sh release
#
# The Release config additionally runs the throughput-bench smoke (ctest
# label "bench", its own 300 s timeout): a fast, low-packet-count pass of
# bench/bench_throughput that gates the perf harness itself — wiring rot
# or a served-packet miscount fails CI even when no one is watching the
# numbers.  It also runs the scenario-engine smoke (ctest label
# "scenario"): one scenario file through hfsc, hpfq and cbq side by side
# (hfsc_sim --compare), gating the scheduler-agnostic compile path.  Both
# run explicitly after the suite so a CTEST_ARGS filter cannot silently
# skip them.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
what="${1:-all}"

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S "${repo}" "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${name}: ctest ==="
  # shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
    --timeout 120 --stop-on-failure ${CTEST_ARGS:-}
}

case "${what}" in
  release|all)
    run_config "Release" "${repo}/build-ci-release" \
      -DCMAKE_BUILD_TYPE=Release
    echo "=== Release: bench smoke ==="
    ctest --test-dir "${repo}/build-ci-release" --output-on-failure \
      -L bench
    echo "=== Release: scenario compare smoke ==="
    ctest --test-dir "${repo}/build-ci-release" --output-on-failure \
      -L scenario
    ;;&
  sanitize|all)
    run_config "ASan+UBSan" "${repo}/build-ci-sanitize" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo "-DHFSC_SANITIZE=address;undefined"
    ;;&
  release|sanitize|all)
    echo "=== ci_check: OK (${what}) ==="
    ;;
  *)
    echo "usage: $0 [release|sanitize|all]" >&2
    exit 2
    ;;
esac
