#!/usr/bin/env bash
# CI gate: build and test libhfsc in a plain Release configuration and an
# address+undefined sanitizer configuration.  Any test failure, sanitizer
# report (-fno-sanitize-recover=all aborts on the first finding), or build
# error fails the script.  Both configurations build with -DHFSC_WERROR=ON
# (-Wall -Wextra -Wshadow promoted to errors).  ctest runs with a 120 s
# per-test timeout and stops at the first failing test, so a broken config
# fails fast instead of grinding through the rest of the suite.
#
#   $ tools/ci_check.sh            # all stages
#   $ tools/ci_check.sh release    # just the Release config
#   $ tools/ci_check.sh sanitize   # just the ASan+UBSan config
#   $ tools/ci_check.sh tsan      # just the ThreadSanitizer config
#   $ tools/ci_check.sh tidy      # just the clang-tidy stage
#
# The sanitizer config re-runs the chaos/soak harness gate (ctest label
# "chaos": kill-and-recover at every journal/checkpoint boundary, the
# degradation-ladder overload proof, corrupt-image probes) explicitly
# under ASan+UBSan, so every recovery path is memory- and UB-clean.  The
# long soak (ctest label "soak") is opt-in:
#   $ HFSC_SOAK=1 tools/ci_check.sh sanitize     # adds the 60 s soak
#
# The ThreadSanitizer config (-DHFSC_SANITIZE=thread) covers the
# threaded supervised sharded runtime (runtime/shard.hpp,
# runtime/supervisor.hpp): it builds everything but runs only the
# thread-bearing labels — "runtime" (MPSC-ring stress, shard
# restart-under-load) and "chaos" (which includes the sharded
# thread-fault episodes) — under a raised timeout, since TSan slows
# the real-thread suites by an order of magnitude.
#
# The randomized long-running suites carry the ctest label "fuzz"
# (tests/CMakeLists.txt) — fault injection, transaction atomicity,
# batched/eligible-set ablation, the min-plus curve-operator fuzz
# (test_curve_minplus_fuzz) and the analyzer-vs-simulator topology fuzz
# (test_analysis_topology_fuzz: measured delay/backlog never exceed the
# analytic route bounds).  They run in every configuration; exclude them
# for a quick local gate with
#   $ CTEST_ARGS="-LE fuzz" tools/ci_check.sh release
#
# The Release config additionally runs the throughput-bench smoke (ctest
# label "bench", its own 300 s timeout): a fast, low-packet-count pass of
# bench/bench_throughput that gates the perf harness itself — wiring rot
# or a served-packet miscount fails CI even when no one is watching the
# numbers.  It also runs the scenario-engine smoke (ctest label
# "scenario"): one scenario file through hfsc, hpfq and cbq side by side
# (hfsc_sim --compare), gating the scheduler-agnostic compile path.  Both
# run explicitly after the suite so a CTEST_ARGS filter cannot silently
# skip them.  The Release config also runs the scenario-lint gate (ctest
# label "lint"): tools/hfsc_lint over every committed scenarios/*.hfsc,
# so the example hierarchies stay diagnostic-clean — plus the negative
# fixture (scenarios/overbudget.hfsc), which passes only when the
# e2e-budget-exceeded route-deadline diagnostic fires; and the simulation
# gate (ctest label "sim"): the Section VII reconstruction compared
# across H-FSC and H-PFQ plus a timed-churn smoke under the invariant
# auditor (the 100k-flow churn soak rides the opt-in "soak" label).
#
# The `tidy` stage runs clang-tidy (.clang-tidy at the repo root, with
# WarningsAsErrors) over src/ tools/ bench/ against a compile_commands
# database.  clang-tidy is not part of the baked toolchain everywhere, so
# the stage degrades to an explicit SKIP when the binary is absent
# instead of failing CI on the missing tool.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
what="${1:-all}"

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S "${repo}" "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${name}: ctest ==="
  # shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
    --timeout 120 --stop-on-failure ${CTEST_ARGS:-}
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy: SKIP (clang-tidy not installed) ==="
    return 0
  fi
  local build_dir="${repo}/build-ci-tidy"
  echo "=== clang-tidy: configure (compile_commands) ==="
  cmake -B "${build_dir}" -S "${repo}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  echo "=== clang-tidy: src/ tools/ bench/ ==="
  # .clang-tidy sets WarningsAsErrors: '*', so any finding fails the
  # stage; xargs -P parallelizes across translation units.
  find "${repo}/src" "${repo}/tools" "${repo}/bench" -name '*.cpp' -print0 |
    xargs -0 -n 4 -P "${jobs}" clang-tidy -p "${build_dir}" --quiet
  echo "=== clang-tidy: clean ==="
}

case "${what}" in
  release|all)
    run_config "Release" "${repo}/build-ci-release" \
      -DCMAKE_BUILD_TYPE=Release -DHFSC_WERROR=ON
    echo "=== Release: bench smoke ==="
    ctest --test-dir "${repo}/build-ci-release" --output-on-failure \
      -L bench
    echo "=== Release: scenario compare smoke ==="
    ctest --test-dir "${repo}/build-ci-release" --output-on-failure \
      -L scenario
    echo "=== Release: scenario lint gate ==="
    ctest --test-dir "${repo}/build-ci-release" --output-on-failure \
      -L lint
    echo "=== Release: simulation gate (Section VII + churn smoke) ==="
    ctest --test-dir "${repo}/build-ci-release" --output-on-failure \
      -L sim
    echo "=== Release: perf smoke vs committed baseline ==="
    # A focused smoke run of the headline combination, compared against
    # the committed trajectory: > 10% regression warns, and fails the
    # stage when HFSC_PERF_GATE=1 (tools/perf_smoke_check.py).
    "${repo}/build-ci-release/bench/bench_throughput" --smoke \
      --workload=wide1000 --kind=dual_heap \
      --out="${repo}/build-ci-release/PERF_smoke.json"
    python3 "${repo}/tools/perf_smoke_check.py" \
      "${repo}/BENCH_throughput.json" \
      "${repo}/build-ci-release/PERF_smoke.json"
    echo "=== Release: curve-cache hit rate (HFSC_CACHE_STATS build) ==="
    # Separate build dir: the stats counters are two atomic increments on
    # the hottest path, so the gated comparison above must not pay for
    # them.  Only the bench target is built here.
    cmake -B "${repo}/build-ci-stats" -S "${repo}" \
      -DCMAKE_BUILD_TYPE=Release -DHFSC_WERROR=ON -DHFSC_CACHE_STATS=ON
    cmake --build "${repo}/build-ci-stats" -j "${jobs}" \
      --target bench_throughput
    "${repo}/build-ci-stats/bench/bench_throughput" --smoke \
      --workload=wide1000 --kind=dual_heap \
      --out="${repo}/build-ci-stats/PERF_smoke_stats.json"
    ;;&
  sanitize|all)
    run_config "ASan+UBSan" "${repo}/build-ci-sanitize" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHFSC_WERROR=ON \
      "-DHFSC_SANITIZE=address;undefined"
    echo "=== ASan+UBSan: chaos/recovery gate ==="
    ctest --test-dir "${repo}/build-ci-sanitize" --output-on-failure \
      -L chaos
    if [ "${HFSC_SOAK:-0}" = "1" ]; then
      echo "=== ASan+UBSan: soak (HFSC_SOAK=1) ==="
      ctest --test-dir "${repo}/build-ci-sanitize" --output-on-failure \
        -L soak --timeout 300
    fi
    ;;&
  tsan|all)
    tsan_dir="${repo}/build-ci-tsan"
    echo "=== TSan: configure ==="
    cmake -B "${tsan_dir}" -S "${repo}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHFSC_WERROR=ON \
      -DHFSC_SANITIZE=thread
    echo "=== TSan: build ==="
    cmake --build "${tsan_dir}" -j "${jobs}"
    echo "=== TSan: runtime (sharded) + chaos gates ==="
    # Only the thread-bearing labels: TSan has nothing new to say about
    # the single-threaded suites, and it slows execution ~10x, hence
    # the raised per-test timeout.
    ctest --test-dir "${tsan_dir}" --output-on-failure \
      -L 'runtime|chaos' --timeout 600 --stop-on-failure
    ;;&
  tidy|all)
    run_tidy
    ;;&
  release|sanitize|tsan|tidy|all)
    echo "=== ci_check: OK (${what}) ==="
    ;;
  *)
    echo "usage: $0 [release|sanitize|tsan|tidy|all]" >&2
    exit 2
    ;;
esac
