// hfsc_lint — static analyzer for .hfsc scenario files.
//
//   $ hfsc_lint [--json|--sarif] [--no-portability] [--max-pkt=N]
//               <file.hfsc>...
//
// Parses each scenario and runs the static hierarchy analyzer
// (analysis/analyzer.hpp) over it: exact piecewise-linear rt
// admissibility, Theorem 2 delay bounds from `envelope` directives,
// route-composed end-to-end budgets (min-plus convolution along
// `route` chains, checked against `deadline` directives), curve-shape
// lints and the scheduler-family portability pre-flight — all before a
// single packet is simulated.  Diagnostics carry the parser's file:line
// provenance, editor-style.
//
// --json emits one machine-readable report per file (a bare object for
// one input, a JSON array for several; schema "hfsc-lint-report-v2" in
// docs/ANALYSIS.md) instead of the text report.  --sarif emits one
// SARIF 2.1.0 document aggregating every input file's diagnostics into
// a single run (for code-scanning upload).  --no-portability skips the
// per-family compile pre-flight.  --max-pkt overrides the fallback max
// packet length (default 1500 B) used for the transmission term when no
// source pins one down.
//
// Exit status: 0 when every file is diagnostic-clean (notes are fine),
// 1 when any file has errors or warnings (or fails to parse), 2 on
// usage errors.  tools/ci_check.sh gates scenarios/*.hfsc on exit 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "sim/scenario.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json|--sarif] [--no-portability] "
               "[--max-pkt=N] <scenario.hfsc>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  hfsc::AnalysisOptions opts;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--sarif") == 0) {
      sarif = true;
    } else if (std::strcmp(arg, "--no-portability") == 0) {
      opts.portability = false;
    } else if (std::strncmp(arg, "--max-pkt=", 10) == 0) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(arg + 10, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "error: --max-pkt needs a positive integer\n");
        return 2;
      }
      opts.default_max_pkt = static_cast<hfsc::Bytes>(n);
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || (json && sarif)) return usage(argv[0]);

  bool all_clean = true;
  const bool many = files.size() > 1;
  std::vector<hfsc::AnalysisReport> reports;  // --sarif: one run over all
  if (json && many) std::printf("[");
  for (std::size_t i = 0; i < files.size(); ++i) {
    try {
      const hfsc::Scenario sc = hfsc::Scenario::parse_file(files[i]);
      hfsc::AnalysisReport report = hfsc::analyze(sc, opts);
      if (json) {
        std::printf("%s%s", i == 0 ? "" : ",", report.to_json().c_str());
      } else if (!sarif) {
        std::printf("%s", report.to_text().c_str());
      }
      if (!report.clean()) all_clean = false;
      if (sarif) reports.push_back(std::move(report));
    } catch (const std::exception& e) {
      // Parse failures are findings too: report and keep linting the
      // remaining inputs so a batch run surfaces every broken file.
      std::fprintf(stderr, "error: %s\n", e.what());
      all_clean = false;
    }
  }
  if (json && many) std::printf("]");
  if (json) std::printf("\n");
  if (sarif) std::printf("%s\n", hfsc::to_sarif(reports).c_str());
  return all_clean ? 0 : 1;
}
