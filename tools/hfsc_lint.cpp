// hfsc_lint — static analyzer for .hfsc scenario files.
//
//   $ hfsc_lint [--json] [--no-portability] [--max-pkt=N] <file.hfsc>...
//
// Parses each scenario and runs the static hierarchy analyzer
// (analysis/analyzer.hpp) over it: exact piecewise-linear rt
// admissibility, Theorem 2 delay bounds from `envelope` directives,
// curve-shape lints and the scheduler-family portability pre-flight —
// all before a single packet is simulated.  Diagnostics carry the
// parser's file:line provenance, editor-style.
//
// --json emits one machine-readable report per file (a bare object for
// one input, a JSON array for several; schema in docs/ANALYSIS.md)
// instead of the text report.  --no-portability skips the per-family
// compile pre-flight.  --max-pkt overrides the fallback max packet
// length (default 1500 B) used for the transmission term when no source
// pins one down.
//
// Exit status: 0 when every file is diagnostic-clean (notes are fine),
// 1 when any file has errors or warnings (or fails to parse), 2 on
// usage errors.  tools/ci_check.sh gates scenarios/*.hfsc on exit 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "sim/scenario.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--no-portability] [--max-pkt=N] "
               "<scenario.hfsc>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  hfsc::AnalysisOptions opts;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--no-portability") == 0) {
      opts.portability = false;
    } else if (std::strncmp(arg, "--max-pkt=", 10) == 0) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(arg + 10, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "error: --max-pkt needs a positive integer\n");
        return 2;
      }
      opts.default_max_pkt = static_cast<hfsc::Bytes>(n);
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  bool all_clean = true;
  const bool many = files.size() > 1;
  if (json && many) std::printf("[");
  for (std::size_t i = 0; i < files.size(); ++i) {
    try {
      const hfsc::Scenario sc = hfsc::Scenario::parse_file(files[i]);
      const hfsc::AnalysisReport report = hfsc::analyze(sc, opts);
      if (json) {
        std::printf("%s%s", i == 0 ? "" : ",", report.to_json().c_str());
      } else {
        std::printf("%s", report.to_text().c_str());
      }
      if (!report.clean()) all_clean = false;
    } catch (const std::exception& e) {
      // Parse failures are findings too: report and keep linting the
      // remaining inputs so a batch run surfaces every broken file.
      std::fprintf(stderr, "error: %s\n", e.what());
      all_clean = false;
    }
  }
  if (json && many) std::printf("]");
  if (json) std::printf("\n");
  return all_clean ? 0 : 1;
}
