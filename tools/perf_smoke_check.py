#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh bench_throughput smoke run against the
committed BENCH_throughput.json trajectory.

Usage:
    perf_smoke_check.py BASELINE_JSON SMOKE_JSON [workload kind]

Compares the hfsc single-dequeue (batch=1) row for the given workload and
eligible-set kind (default: wide1000 dual_heap — the headline combination
docs/BENCH_NOTES.md tracks).  A smoke run uses far fewer packets than the
committed full run, so the comparison is deliberately loose: a short run
spends a larger fraction of its wall time warming caches and measures
~10-15% below the full-run figure even on an identical tree.

  * regression of more than REGRESSION_PCT (25%) prints a loud warning;
  * with HFSC_PERF_GATE=1 in the environment the warning becomes a
    non-zero exit, failing CI.

The baseline may be schema v3 (no "batch" field; rows are implicitly
batch=1) or v4, so the gate keeps working across the schema bump.
"""

import json
import os
import sys

# A 200k-packet smoke run reads ~10-15% under the 10M-packet baseline on
# an identical tree (warmup fraction), so the gate triggers at 25%: it
# catches "someone pessimized the hot path", not methodology skew.
REGRESSION_PCT = 25.0


def load_row(path, workload, kind):
    with open(path) as f:
        doc = json.load(f)
    for row in doc.get("results", []):
        if (
            row.get("workload") == workload
            and row.get("scheduler") == "hfsc"
            and row.get("eligible_set") == kind
            and row.get("batch", 1) == 1
        ):
            return row
    sys.exit(
        f"FATAL: {path}: no hfsc/{workload}/{kind} batch=1 row "
        f"(schema_version={doc.get('schema_version')})"
    )


def main(argv):
    if len(argv) not in (3, 5):
        sys.exit(f"usage: {argv[0]} BASELINE_JSON SMOKE_JSON [workload kind]")
    workload = argv[3] if len(argv) == 5 else "wide1000"
    kind = argv[4] if len(argv) == 5 else "dual_heap"
    base = load_row(argv[1], workload, kind)
    smoke = load_row(argv[2], workload, kind)

    base_pps = float(base["pkts_per_sec"])
    smoke_pps = float(smoke["pkts_per_sec"])
    if base_pps <= 0:
        sys.exit(f"FATAL: baseline {argv[1]} has pkts_per_sec <= 0")
    delta_pct = 100.0 * (smoke_pps - base_pps) / base_pps
    print(
        f"perf-smoke {workload}/{kind}: baseline {base_pps:,.0f} pkts/s "
        f"({base['packets']} pkts), smoke {smoke_pps:,.0f} pkts/s "
        f"({smoke['packets']} pkts): {delta_pct:+.1f}%"
    )

    if delta_pct < -REGRESSION_PCT:
        msg = (
            f"perf-smoke: {workload}/{kind} regressed {-delta_pct:.1f}% "
            f"(> {REGRESSION_PCT:.0f}% threshold) vs committed baseline"
        )
        if os.environ.get("HFSC_PERF_GATE") == "1":
            sys.exit(f"FATAL: {msg} [HFSC_PERF_GATE=1]")
        print(f"WARNING: {msg}", file=sys.stderr)
        print(
            "WARNING: set HFSC_PERF_GATE=1 to make this fatal; a slow/busy "
            "CI machine can also trip it",
            file=sys.stderr,
        )
    else:
        print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
