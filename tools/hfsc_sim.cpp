// hfsc_sim — run a scenario file and print per-class statistics.
//
//   $ hfsc_sim [--audit[=N]] [--admission] [--checkpoint=FILE]
//              [--scheduler=KIND] [--json] scenario.hfsc
//   $ hfsc_sim --compare=KIND[,KIND...] [--json] scenario.hfsc
//   $ hfsc_sim --analyze [--json] scenario.hfsc
//   $ hfsc_sim --restore=FILE
//
// --audit enables the runtime invariant auditor (core/auditor.hpp) every
// N scheduler operations during the run (default 256).  --admission
// refuses scenarios whose leaf rt curves oversubscribe the link (one-line
// error naming the class).  --checkpoint writes the scheduler's final
// state to FILE after the run; --restore loads such a file, audits it and
// prints a summary instead of running a scenario.  Parse and scheduler
// errors exit with code 1 and a one-line message.
//
// --analyze runs the static hierarchy analyzer (analysis/analyzer.hpp)
// over the scenario instead of simulating it: rt admissibility, Theorem 2
// delay bounds from `envelope` directives, route-composed end-to-end
// budgets against `deadline` directives, curve-shape lints and the
// family portability pre-flight (tools/hfsc_lint is the multi-file
// front-end, with --sarif).  With --json the analyzer report is emitted
// as "hfsc-lint-report-v2" JSON.  Exits 0 when clean, 1 on
// errors/warnings.  A plain --json run of a routed scenario also calls
// the analyzer to attach each route's static delay bound ("bound_ms")
// beside the measured percentiles.
//
// --scheduler runs the same hierarchy under another family (hfsc, hpfq,
// cbq, drr, sced, vclock, fifo), overriding the file's `scheduler`
// directive; lossy-mapping notes go to stderr (docs/SCHEDULERS.md).
// --json replaces the human table with a machine-readable report
// (schema "hfsc-sim-report-v1", or "hfsc-sim-compare-v1" under
// --compare) carrying per-class delay histograms, per-node conservation
// counters and end-to-end route rows; docs/SCENARIOS.md documents the
// schema.  Notes stay on stderr either way.
// --compare runs the scenario through several families and prints one
// side-by-side delay/throughput table.  Both are incompatible with
// --checkpoint, which is an H-FSC-only feature.
//
// See src/sim/scenario.hpp for the file format and core/checkpoint.hpp
// for the checkpoint format.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/auditor.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "sim/chaos.hpp"
#include "sim/scenario.hpp"
#include "util/errors.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--audit[=N]] [--admission] [--checkpoint=FILE] "
               "[--scheduler=KIND] [--json] <scenario-file>\n"
               "       %s --compare=KIND[,KIND...] [--json] <scenario-file>\n"
               "       %s --analyze <scenario-file>\n"
               "       %s --restore=FILE [--scheduler=KIND]\n"
               "       %s --chaos[=EPISODES] [--seed=N] [--soak[=SECONDS]]\n"
               "                 [--shards=N [--shard-episodes=N]]\n"
               "KIND: hfsc | hpfq | cbq | drr | sced | vclock | fifo\n"
               "--shards adds real-threaded chaos against the supervised\n"
               "sharded runtime (stalls, kills, ring overflow, supervisor\n"
               "outage) on top of the single-instance episodes.\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

// Parses a comma-separated kind list; prints its own error.
bool parse_kinds(const char* list, std::vector<hfsc::SchedulerKind>* out) {
  std::string tok;
  for (const char* p = list;; ++p) {
    if (*p == ',' || *p == '\0') {
      const auto kind = hfsc::parse_scheduler_kind(tok);
      if (!kind) {
        std::fprintf(stderr, "error: unknown scheduler kind: %s\n",
                     tok.c_str());
        return false;
      }
      out->push_back(*kind);
      tok.clear();
      if (*p == '\0') break;
    } else {
      tok.push_back(*p);
    }
  }
  return !out->empty();
}

int restore_summary(const std::string& file,
                    std::optional<hfsc::SchedulerKind> scheduler) {
  // Checkpoints are scheduler-specific: the format serializes H-FSC
  // runtime-curve state that no other family can rehydrate.  Asking for
  // another family is a typed error, not a silent fallback; a
  // format-version mismatch surfaces as Error{kBadCheckpoint} from
  // restore_checkpoint with the offending version in the message.
  if (scheduler && *scheduler != hfsc::SchedulerKind::kHfsc) {
    throw hfsc::Error(hfsc::Errc::kInvalidArgument,
                      "checkpoint files hold H-FSC state; they cannot be "
                      "restored into scheduler kind '" +
                          std::string(hfsc::to_string(*scheduler)) + "'");
  }
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "error: cannot open checkpoint: %s\n", file.c_str());
    return 1;
  }
  // restore_checkpoint already audits and throws on a dirty state; run
  // the audit again here to print its verdict alongside the summary.
  const hfsc::Hfsc sched = hfsc::restore_checkpoint(in);
  const hfsc::AuditReport report = hfsc::audit(sched);
  std::size_t live = 0;
  for (hfsc::ClassId c = 1; c < sched.num_classes(); ++c) {
    if (!sched.is_deleted(c)) ++live;
  }
  std::printf("checkpoint: %s\n", file.c_str());
  std::printf("classes: %zu live (%zu ids)\n", live,
              static_cast<std::size_t>(sched.num_classes() - 1));
  std::printf("backlog: %zu packets, %llu bytes\n", sched.backlog_packets(),
              static_cast<unsigned long long>(sched.backlog_bytes()));
  std::printf("digest: %016llx\n",
              static_cast<unsigned long long>(hfsc::state_digest(sched)));
  std::printf("audit: %s\n", report.to_string().c_str());
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t audit_every = 0;
  bool admission = false;
  bool analyze = false;
  bool json = false;
  bool chaos = false;
  bool sharded = false;
  hfsc::ChaosConfig chaos_cfg;
  std::string checkpoint_path;
  std::string restore_path;
  std::optional<hfsc::SchedulerKind> scheduler;
  std::vector<hfsc::SchedulerKind> compare;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--audit") == 0) {
      audit_every = 256;
    } else if (std::strncmp(arg, "--audit=", 8) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg + 8, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "error: --audit needs a positive integer\n");
        return 2;
      }
      audit_every = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--admission") == 0) {
      admission = true;
    } else if (std::strcmp(arg, "--analyze") == 0) {
      analyze = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--chaos") == 0) {
      chaos = true;
    } else if (std::strncmp(arg, "--chaos=", 8) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg + 8, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "error: --chaos needs a positive integer\n");
        return 2;
      }
      chaos = true;
      chaos_cfg.episodes = static_cast<int>(n);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(arg + 7, &end, 0);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "error: --seed needs an integer\n");
        return 2;
      }
      chaos_cfg.seed = static_cast<std::uint64_t>(n);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg + 9, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0 || n > 64) {
        std::fprintf(stderr, "error: --shards needs an integer in [1, 64]\n");
        return 2;
      }
      sharded = true;
      chaos_cfg.shards = static_cast<int>(n);
    } else if (std::strncmp(arg, "--shard-episodes=", 17) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg + 17, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr,
                     "error: --shard-episodes needs a positive integer\n");
        return 2;
      }
      sharded = true;
      chaos_cfg.shard_episodes = static_cast<int>(n);
    } else if (std::strcmp(arg, "--soak") == 0) {
      chaos_cfg.soak = true;
    } else if (std::strncmp(arg, "--soak=", 7) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg + 7, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "error: --soak needs a positive integer\n");
        return 2;
      }
      chaos_cfg.soak = true;
      chaos_cfg.soak_seconds = static_cast<int>(n);
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      checkpoint_path = arg + 13;
      if (checkpoint_path.empty()) return usage(argv[0]);
    } else if (std::strncmp(arg, "--restore=", 10) == 0) {
      restore_path = arg + 10;
      if (restore_path.empty()) return usage(argv[0]);
    } else if (std::strncmp(arg, "--scheduler=", 12) == 0) {
      scheduler = hfsc::parse_scheduler_kind(arg + 12);
      if (!scheduler) {
        std::fprintf(stderr, "error: unknown scheduler kind: %s\n", arg + 12);
        return 2;
      }
    } else if (std::strncmp(arg, "--compare=", 10) == 0) {
      if (!parse_kinds(arg + 10, &compare)) return 2;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (chaos || sharded || chaos_cfg.soak) {
      if (path != nullptr || admission || analyze || json ||
          audit_every != 0 || !checkpoint_path.empty() ||
          !restore_path.empty() || scheduler || !compare.empty()) {
        return usage(argv[0]);
      }
      bool ok = true;
      if (chaos || chaos_cfg.soak) {
        const hfsc::ChaosReport report = hfsc::run_chaos(chaos_cfg);
        std::printf("%s\n", report.to_string().c_str());
        ok = ok && report.ok();
      }
      if (sharded) {
        const hfsc::ChaosReport report = hfsc::run_sharded_chaos(chaos_cfg);
        std::printf("%s\n", report.to_string().c_str());
        ok = ok && report.ok();
      }
      return ok ? 0 : 1;
    }
    if (!restore_path.empty()) {
      if (path != nullptr || admission || json || audit_every != 0 ||
          !checkpoint_path.empty() || !compare.empty()) {
        return usage(argv[0]);
      }
      return restore_summary(restore_path, scheduler);
    }
    if (path == nullptr) return usage(argv[0]);
    if (analyze) {
      if (admission || audit_every != 0 || !checkpoint_path.empty() ||
          scheduler || !compare.empty()) {
        return usage(argv[0]);
      }
      const hfsc::Scenario sc = hfsc::Scenario::parse_file(path);
      const hfsc::AnalysisReport report = hfsc::analyze(sc);
      if (json) {
        std::printf("%s\n", report.to_json().c_str());
      } else {
        std::printf("%s", report.to_text().c_str());
      }
      return report.clean() ? 0 : 1;
    }
    if (!checkpoint_path.empty() &&
        (!compare.empty() ||
         (scheduler && *scheduler != hfsc::SchedulerKind::kHfsc))) {
      std::fprintf(stderr,
                   "error: --checkpoint requires the hfsc scheduler\n");
      return 2;
    }
    if (!compare.empty() && scheduler) return usage(argv[0]);

    const hfsc::Scenario sc = hfsc::Scenario::parse_file(path);
    hfsc::ScenarioRunOptions opts;
    opts.audit_every = audit_every;
    opts.admission = admission;
    opts.checkpoint_path = checkpoint_path;
    opts.scheduler = scheduler;
    if (!compare.empty()) {
      const hfsc::CompareResult result = hfsc::run_compare(sc, compare, opts);
      for (const hfsc::ScenarioResult& run : result.runs) {
        for (const std::string& note : run.notes) {
          std::fprintf(stderr, "note [%s]: %s\n", run.scheduler.c_str(),
                       note.c_str());
        }
      }
      std::printf("%s", json ? result.to_json().c_str()
                             : result.to_table().c_str());
      return 0;
    }
    hfsc::ScenarioResult result = hfsc::run_scenario(sc, opts);
    for (const std::string& note : result.notes) {
      std::fprintf(stderr, "note: %s\n", note.c_str());
    }
    // Put the analyzer's route-composed delay bound next to the measured
    // end-to-end percentiles ("bound_ms" in the JSON rows).  Analysis
    // failures never fail the run — the bound is advisory decoration.
    if (json && !result.e2e.empty()) {
      try {
        hfsc::AnalysisOptions aopts;
        aopts.portability = false;
        const hfsc::AnalysisReport rep = hfsc::analyze(sc, aopts);
        for (hfsc::ScenarioResult::EndToEnd& ee : result.e2e) {
          for (const hfsc::FlowBudget& f : rep.flows) {
            if (f.cls == ee.cls && f.e2e_delay) {
              ee.bound_ms = static_cast<double>(*f.e2e_delay) / 1e6;
            }
          }
        }
      } catch (const std::exception&) {
      }
    }
    std::printf("%s", json ? result.to_json().c_str()
                           : result.to_table().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
