// hfsc_sim — run an H-FSC scenario file and print per-class statistics.
//
//   $ hfsc_sim scenarios/campus.hfsc
//
// See src/sim/scenario.hpp for the file format.
#include <cstdio>
#include <exception>

#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario-file>\n", argv[0]);
    return 2;
  }
  try {
    const hfsc::Scenario sc = hfsc::Scenario::parse_file(argv[1]);
    const hfsc::ScenarioResult result = hfsc::run_scenario(sc);
    std::printf("%s", result.to_table().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
