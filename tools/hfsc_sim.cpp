// hfsc_sim — run an H-FSC scenario file and print per-class statistics.
//
//   $ hfsc_sim [--audit[=N]] scenarios/campus.hfsc
//
// --audit enables the runtime invariant auditor (core/auditor.hpp) every
// N scheduler operations during the run (default 256).  Parse and
// scheduler errors exit with code 1 and a one-line message.
//
// See src/sim/scenario.hpp for the file format.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "sim/scenario.hpp"
#include "util/errors.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--audit[=N]] <scenario-file>\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t audit_every = 0;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--audit") == 0) {
      audit_every = 256;
    } else if (std::strncmp(arg, "--audit=", 8) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg + 8, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "error: --audit needs a positive integer\n");
        return 2;
      }
      audit_every = static_cast<std::size_t>(n);
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  try {
    const hfsc::Scenario sc = hfsc::Scenario::parse_file(path);
    hfsc::ScenarioRunOptions opts;
    opts.audit_every = audit_every;
    const hfsc::ScenarioResult result = hfsc::run_scenario(sc, opts);
    std::printf("%s", result.to_table().c_str());
    return 0;
  } catch (const hfsc::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
